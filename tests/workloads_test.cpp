// Benchmark-suite validation: structural well-formedness of all 17
// workloads and functional correctness of the ones with public reference
// semantics (crc32 against a software CRC, sha256 against a reference
// compression, binary divide against integer division, hsv2rgb against the
// integer formulas). crc32 is additionally checked end-to-end at the gate
// level (IR -> AIG -> simulation).
#include <array>

#include <gtest/gtest.h>

#include "aig/simulate.h"
#include "backend/netlist.h"
#include "ir/evaluate.h"
#include "ir/verify.h"
#include "lower/lowering.h"
#include "support/rng.h"
#include "workloads/registry.h"


namespace isdc::workloads {
namespace {

TEST(RegistryTest, SeventeenWorkloadsInTableOrder) {
  const auto& specs = all_workloads();
  ASSERT_EQ(specs.size(), 17u);
  EXPECT_EQ(specs.front().name, "ml_datapath1");
  EXPECT_EQ(specs.back().name, "fpexp_32");
  EXPECT_NE(find_workload("sha256"), nullptr);
  EXPECT_EQ(find_workload("nonexistent"), nullptr);
}

class WorkloadStructureTest
    : public ::testing::TestWithParam<std::size_t> {};

TEST_P(WorkloadStructureTest, BuildsAndVerifies) {
  const workload_spec& spec = all_workloads()[GetParam()];
  const ir::graph g = spec.build();
  EXPECT_EQ(ir::verify(g), "") << spec.name;
  EXPECT_GT(g.num_nodes(), 4u) << spec.name;
  EXPECT_FALSE(g.outputs().empty()) << spec.name;
  EXPECT_TRUE(spec.clock_period_ps == 2500.0 || spec.clock_period_ps == 5000.0);
  // Deterministic construction.
  const ir::graph g2 = spec.build();
  EXPECT_EQ(g.num_nodes(), g2.num_nodes());
  // Evaluation smoke test.
  rng r(GetParam());
  std::vector<std::uint64_t> inputs;
  for (ir::node_id in : g.inputs()) {
    inputs.push_back(r.next() & ir::width_mask(g.at(in).width));
  }
  EXPECT_EQ(ir::evaluate(g, inputs), ir::evaluate(g, inputs));
}

INSTANTIATE_TEST_SUITE_P(All, WorkloadStructureTest,
                         ::testing::Range<std::size_t>(0, 17),
                         [](const auto& info) {
                           return all_workloads()[info.param].name;
                         });

// --- crc32 ---

std::uint32_t software_crc32_step(std::uint32_t crc, std::uint32_t data,
                                  int bits) {
  for (int i = 0; i < bits; ++i) {
    const std::uint32_t bit = (crc ^ (data >> i)) & 1u;
    crc >>= 1;
    if (bit != 0) {
      crc ^= 0xedb88320u;
    }
  }
  return crc;
}

TEST(Crc32Test, MatchesSoftwareReference) {
  const ir::graph g = build_crc32(32);
  rng r(1);
  for (int trial = 0; trial < 50; ++trial) {
    const std::uint32_t crc_in = static_cast<std::uint32_t>(r.next());
    const std::uint32_t data = static_cast<std::uint32_t>(r.next());
    const auto out = ir::evaluate(
        g, std::vector<std::uint64_t>{crc_in, data});
    EXPECT_EQ(out[0], software_crc32_step(crc_in, data, 32));
  }
}

TEST(Crc32Test, StandardTestVector) {
  // CRC32("\x00...") style check: feeding data=0, crc=0xffffffff for one
  // word matches the software loop.
  const ir::graph g = build_crc32(32);
  const auto out =
      ir::evaluate(g, std::vector<std::uint64_t>{0xffffffffu, 0u});
  EXPECT_EQ(out[0], software_crc32_step(0xffffffffu, 0, 32));
}

TEST(Crc32Test, GateLevelSimulationMatches) {
  const ir::graph g = build_crc32(16);
  const lower::lowering_result lowered = lower::lower_graph(g);
  rng r(7);
  const std::uint32_t crc_in = static_cast<std::uint32_t>(r.next());
  const std::uint32_t data = static_cast<std::uint32_t>(r.next());
  // One pattern lane (all 64 lanes identical).
  std::vector<std::uint64_t> patterns;
  for (int bit = 0; bit < 32; ++bit) {
    patterns.push_back(((crc_in >> bit) & 1) != 0 ? ~0ull : 0ull);
  }
  for (int bit = 0; bit < 32; ++bit) {
    patterns.push_back(((data >> bit) & 1) != 0 ? ~0ull : 0ull);
  }
  const auto sim = aig::simulate(lowered.net, patterns);
  std::uint32_t gate_result = 0;
  for (int bit = 0; bit < 32; ++bit) {
    if ((aig::literal_value(lowered.net.pos()[static_cast<std::size_t>(bit)],
                            sim) &
         1) != 0) {
      gate_result |= 1u << bit;
    }
  }
  EXPECT_EQ(gate_result, software_crc32_step(crc_in, data, 16));
}

// --- sha256 ---

struct sha_state {
  std::array<std::uint32_t, 8> h;
};

std::uint32_t rotr32(std::uint32_t x, int k) {
  return (x >> k) | (x << (32 - k));
}

sha_state reference_sha256_rounds(sha_state in,
                                  const std::vector<std::uint32_t>& words,
                                  int rounds) {
  static constexpr std::array<std::uint32_t, 64> k = {
      0x428a2f98, 0x71374491, 0xb5c0fbcf, 0xe9b5dba5, 0x3956c25b,
      0x59f111f1, 0x923f82a4, 0xab1c5ed5, 0xd807aa98, 0x12835b01,
      0x243185be, 0x550c7dc3, 0x72be5d74, 0x80deb1fe, 0x9bdc06a7,
      0xc19bf174, 0xe49b69c1, 0xefbe4786, 0x0fc19dc6, 0x240ca1cc,
      0x2de92c6f, 0x4a7484aa, 0x5cb0a9dc, 0x76f988da, 0x983e5152,
      0xa831c66d, 0xb00327c8, 0xbf597fc7, 0xc6e00bf3, 0xd5a79147,
      0x06ca6351, 0x14292967, 0x27b70a85, 0x2e1b2138, 0x4d2c6dfc,
      0x53380d13, 0x650a7354, 0x766a0abb, 0x81c2c92e, 0x92722c85,
      0xa2bfe8a1, 0xa81a664b, 0xc24b8b70, 0xc76c51a3, 0xd192e819,
      0xd6990624, 0xf40e3585, 0x106aa070, 0x19a4c116, 0x1e376c08,
      0x2748774c, 0x34b0bcb5, 0x391c0cb3, 0x4ed8aa4a, 0x5b9cca4f,
      0x682e6ff3, 0x748f82ee, 0x78a5636f, 0x84c87814, 0x8cc70208,
      0x90befffa, 0xa4506ceb, 0xbef9a3f7, 0xc67178f2};
  std::vector<std::uint32_t> w = words;
  w.resize(static_cast<std::size_t>(std::max(rounds, 16)), 0);
  for (int t = 16; t < rounds; ++t) {
    const std::uint32_t s0 = rotr32(w[t - 15], 7) ^ rotr32(w[t - 15], 18) ^
                             (w[t - 15] >> 3);
    const std::uint32_t s1 = rotr32(w[t - 2], 17) ^ rotr32(w[t - 2], 19) ^
                             (w[t - 2] >> 10);
    w[static_cast<std::size_t>(t)] = w[t - 16] + s0 + w[t - 7] + s1;
  }
  auto [a, b, c, d, e, f, g, h] = in.h;
  for (int t = 0; t < rounds; ++t) {
    const std::uint32_t big_s1 =
        rotr32(e, 6) ^ rotr32(e, 11) ^ rotr32(e, 25);
    const std::uint32_t ch = (e & f) ^ (~e & g);
    const std::uint32_t t1 =
        h + big_s1 + ch + k[static_cast<std::size_t>(t)] +
        w[static_cast<std::size_t>(t)];
    const std::uint32_t big_s0 =
        rotr32(a, 2) ^ rotr32(a, 13) ^ rotr32(a, 22);
    const std::uint32_t maj = (a & b) ^ (a & c) ^ (b & c);
    const std::uint32_t t2 = big_s0 + maj;
    h = g;
    g = f;
    f = e;
    e = d + t1;
    d = c;
    c = b;
    b = a;
    a = t1 + t2;
  }
  sha_state out;
  out.h = {a + in.h[0], b + in.h[1], c + in.h[2], d + in.h[3],
           e + in.h[4], f + in.h[5], g + in.h[6], h + in.h[7]};
  return out;
}

class Sha256Test : public ::testing::TestWithParam<int> {};

TEST_P(Sha256Test, MatchesReferenceRounds) {
  const int rounds = GetParam();
  const ir::graph g = build_sha256(rounds);
  rng r(static_cast<std::uint64_t>(rounds));
  sha_state in;
  std::vector<std::uint64_t> inputs;
  for (auto& h : in.h) {
    h = static_cast<std::uint32_t>(r.next());
    inputs.push_back(h);
  }
  std::vector<std::uint32_t> words;
  for (int t = 0; t < std::min(rounds, 16); ++t) {
    words.push_back(static_cast<std::uint32_t>(r.next()));
    inputs.push_back(words.back());
  }
  const auto out = ir::evaluate(g, inputs);
  const sha_state expected = reference_sha256_rounds(in, words, rounds);
  ASSERT_EQ(out.size(), 8u);
  for (int i = 0; i < 8; ++i) {
    EXPECT_EQ(out[static_cast<std::size_t>(i)],
              expected.h[static_cast<std::size_t>(i)])
        << "state word " << i << " rounds " << rounds;
  }
}

INSTANTIATE_TEST_SUITE_P(Rounds, Sha256Test,
                         ::testing::Values(1, 4, 12, 16, 24, 64));

// --- binary divide ---

TEST(BinaryDivideTest, MatchesIntegerDivision) {
  const ir::graph g = build_binary_divide(8);
  rng r(3);
  for (int trial = 0; trial < 200; ++trial) {
    const std::uint64_t dividend = r.next() & 0xff;
    const std::uint64_t divisor = (r.next() & 0xff) | 1;  // nonzero
    const auto out =
        ir::evaluate(g, std::vector<std::uint64_t>{dividend, divisor});
    EXPECT_EQ(out[0], dividend / divisor) << dividend << "/" << divisor;
    EXPECT_EQ(out[1], dividend % divisor) << dividend << "%" << divisor;
  }
}

TEST(BinaryDivideTest, WidthParameterized) {
  for (int width : {4, 6, 12}) {
    const ir::graph g = build_binary_divide(width);
    const std::uint64_t mask = ir::width_mask(static_cast<std::uint32_t>(width));
    rng r(static_cast<std::uint64_t>(width));
    for (int trial = 0; trial < 50; ++trial) {
      const std::uint64_t a = r.next() & mask;
      const std::uint64_t b = (r.next() & mask) | 1;
      const auto out = ir::evaluate(g, std::vector<std::uint64_t>{a, b});
      EXPECT_EQ(out[0], a / b);
      EXPECT_EQ(out[1], a % b);
    }
  }
}

// --- hsv2rgb ---

std::array<std::uint64_t, 3> reference_hsv2rgb(std::uint32_t h,
                                               std::uint32_t s,
                                               std::uint32_t v) {
  const std::uint32_t h6 = h * 6;
  const std::uint32_t region = (h6 >> 8) & 7;
  const std::uint32_t f = h6 & 0xff;
  const auto scale = [](std::uint32_t a, std::uint32_t c) {
    return ((a * c) >> 8) & 0xff;
  };
  const std::uint32_t p = scale(v, 255 - s);
  const std::uint32_t q = scale(v, (255 - scale(s, f)) & 0xffff);
  const std::uint32_t t = scale(v, (255 - scale(s, 255 - f)) & 0xffff);
  switch (region) {
    case 0: return {v, t, p};
    case 1: return {q, v, p};
    case 2: return {p, v, t};
    case 3: return {p, q, v};
    case 4: return {t, p, v};
    default: return {v, p, q};
  }
}

TEST(Hsv2RgbTest, MatchesIntegerReference) {
  const ir::graph g = build_hsv2rgb();
  rng r(17);
  for (int trial = 0; trial < 300; ++trial) {
    const std::uint32_t h = static_cast<std::uint32_t>(r.next() & 0xff);
    const std::uint32_t s = static_cast<std::uint32_t>(r.next() & 0xff);
    const std::uint32_t v = static_cast<std::uint32_t>(r.next() & 0xff);
    const auto out = ir::evaluate(g, std::vector<std::uint64_t>{h, s, v});
    const auto expected = reference_hsv2rgb(h, s, v);
    EXPECT_EQ(out[0], expected[0]) << "r at h=" << h;
    EXPECT_EQ(out[1], expected[1]) << "g at h=" << h;
    EXPECT_EQ(out[2], expected[2]) << "b at h=" << h;
  }
}

TEST(Hsv2RgbTest, GrayWhenSaturationZero) {
  const ir::graph g = build_hsv2rgb();
  const auto out = ir::evaluate(g, std::vector<std::uint64_t>{123, 0, 200});
  // s = 0: p = q = t = (v*255)>>8 = v - 1, while one channel carries v
  // itself — the classic off-by-one of the integer algorithm. All three
  // channels must agree within 1 count.
  EXPECT_EQ(out[0], out[2]);
  EXPECT_NEAR(static_cast<double>(out[1]), static_cast<double>(out[0]), 1.0);
}

// --- structural expectations on the synthetic datapaths ---

TEST(MlCoreTest, Opcode4IsSmallest) {
  std::array<std::size_t, 5> sizes{};
  for (int op = 0; op < 5; ++op) {
    sizes[static_cast<std::size_t>(op)] =
        build_ml_datapath0_opcode(op).num_nodes();
  }
  EXPECT_LT(sizes[4], sizes[2]);  // mul-add smaller than conv-9
  EXPECT_LT(sizes[0], sizes[2]);
}

TEST(MlCoreTest, AllOpcodesUnionIsLargest) {
  const std::size_t all = build_ml_datapath0_all().num_nodes();
  for (int op = 0; op < 5; ++op) {
    EXPECT_GT(all, build_ml_datapath0_opcode(op).num_nodes() / 2);
  }
}

TEST(MlCoreTest, Datapath2ScalesWithMacs) {
  EXPECT_GT(build_ml_datapath2(16).num_nodes(),
            build_ml_datapath2(4).num_nodes());
}

TEST(VideoCoreTest, ScalesWithPixels) {
  EXPECT_GT(build_video_core_datapath(4).num_nodes(),
            build_video_core_datapath(1).num_nodes());
  EXPECT_EQ(build_video_core_datapath(2).outputs().size(), 6u);
}

TEST(InternalDatapathTest, DeepChain) {
  const ir::graph g = build_internal_datapath(24);
  EXPECT_GT(g.num_nodes(), 100u);
  EXPECT_EQ(g.outputs().size(), 2u);
}

TEST(RrotTest, RotatesAndMixes) {
  const ir::graph g = build_rrot();
  const std::uint32_t x0 = 0x80000001u;
  const std::uint32_t x1 = 0xff00ff00u;
  const std::uint32_t x2 = 0x12345678u;
  const auto out = ir::evaluate(
      g, std::vector<std::uint64_t>{x0, x1, x2, 4, 8, 16});
  // Lane 0: t1 = rotr(x0, 4); v = t1 ^ x1 ^ rotr(x1, 9);
  // out = ((v + x2) + t1) ^ rotr(x2, 7).
  const auto rotr = [](std::uint32_t v, unsigned k) {
    return k == 0 ? v : (v >> k) | (v << (32 - k));
  };
  const std::uint32_t t1 = rotr(x0, 4);
  const std::uint32_t v = t1 ^ x1 ^ rotr(x1, 9);
  EXPECT_EQ(out[0],
            static_cast<std::uint32_t>(((v + x2) + t1) ^ rotr(x2, 7)));
}

// --- the synthetic generators (random / mixed / stitched) ---

/// FNV-1a over the canonical text serialization: node ids, opcodes,
/// widths, operand edges and outputs all feed the hash, so any structural
/// change moves it.
std::uint64_t graph_fingerprint(const ir::graph& g) {
  std::uint64_t h = 14695981039346656037ull;
  for (const char c : backend::to_text(g)) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ull;
  }
  return h;
}

// The documented stability guarantee (registry.h): for a fixed (seed,
// num_ops, options) tuple these generators are stable artifacts of the
// library. If a deliberate generator change lands, update the goldens AND
// call the break out in CHANGES.md — recorded fuzz repro seeds die with it.
TEST(GeneratorStabilityTest, GoldenFingerprints) {
  EXPECT_EQ(graph_fingerprint(build_random_dag(42, 200)),
            0x28e627df5df097b9ull);
  EXPECT_EQ(graph_fingerprint(build_mixed_dag(42, 200)),
            0x17450b71b6974286ull);
  EXPECT_EQ(graph_fingerprint(stitch_registry(7, 1500)),
            0xd57e28d1c6d8b141ull);
}

TEST(MixedDagTest, DeterministicAndVerifies) {
  const ir::graph a = build_mixed_dag(3, 400);
  const ir::graph b = build_mixed_dag(3, 400);
  EXPECT_EQ(ir::verify(a), "");
  EXPECT_EQ(graph_fingerprint(a), graph_fingerprint(b));
  EXPECT_NE(graph_fingerprint(a), graph_fingerprint(build_mixed_dag(4, 400)));
  EXPECT_GE(a.num_nodes(), 400u);
}

TEST(MixedDagTest, EmitsEveryOperationClass) {
  const ir::graph g = build_mixed_dag(5, 600);
  int arith = 0, logic = 0, compares = 0, muxes = 0;
  for (const ir::node& n : g.nodes()) {
    switch (n.op) {
      case ir::opcode::add:
      case ir::opcode::sub:
      case ir::opcode::mul:
        ++arith;
        break;
      case ir::opcode::band:
      case ir::opcode::bor:
      case ir::opcode::bxor:
        ++logic;
        break;
      case ir::opcode::eq:
      case ir::opcode::ne:
      case ir::opcode::ult:
      case ir::opcode::ule:
        ++compares;
        break;
      case ir::opcode::mux:
        ++muxes;
        break;
      default:
        break;
    }
  }
  // Loose sanity bands around the default class fractions (.35 arith,
  // .25 logic, .15 compare, rest muxes + chains); a collapsed class means
  // the generator regressed.
  EXPECT_GT(arith, 100);
  EXPECT_GT(logic, 60);
  EXPECT_GT(compares, 40);
  EXPECT_GT(muxes, 40);
  // Every mux selector is a 1-bit predicate.
  for (const ir::node& n : g.nodes()) {
    if (n.op == ir::opcode::mux) {
      EXPECT_EQ(g.at(n.operands[0]).width, 1u);
    }
  }
}

TEST(MixedDagTest, ControlHeavyShapeVerifiesAndEvaluates) {
  mixed_dag_options heavy;
  heavy.arith_fraction = 0.2;
  heavy.logic_fraction = 0.15;
  heavy.compare_fraction = 0.25;
  heavy.select_chain_probability = 0.35;
  const ir::graph g = build_mixed_dag(6, 300, heavy);
  EXPECT_EQ(ir::verify(g), "");
  rng r(6);
  std::vector<std::uint64_t> inputs;
  for (ir::node_id in : g.inputs()) {
    inputs.push_back(r.next() & ir::width_mask(g.at(in).width));
  }
  EXPECT_EQ(ir::evaluate(g, inputs), ir::evaluate(g, inputs));
}

TEST(StitchTest, ParallelModePreservesPartsAsIslands) {
  const ir::graph p0 = build_random_dag(20, 60);
  const ir::graph p1 = build_mixed_dag(21, 80);
  const ir::graph stitched = stitch_designs({&p0, &p1}, {});
  EXPECT_EQ(ir::verify(stitched), "");
  EXPECT_EQ(stitched.num_nodes(), p0.num_nodes() + p1.num_nodes());
  EXPECT_EQ(stitched.outputs().size(),
            p0.outputs().size() + p1.outputs().size());
  EXPECT_EQ(stitched.inputs().size(),
            p0.inputs().size() + p1.inputs().size());
  // Part 0's nodes are bit-identical copies at the same ids.
  for (ir::node_id v = 0; v < static_cast<ir::node_id>(p0.num_nodes());
       ++v) {
    EXPECT_EQ(stitched.at(v).op, p0.at(v).op);
    EXPECT_EQ(stitched.at(v).width, p0.at(v).width);
  }
}

TEST(StitchTest, ChainedModeDrivesLaterPartsFromEarlierOutputs) {
  const ir::graph p0 = build_random_dag(22, 60);
  const ir::graph p1 = build_random_dag(23, 60);
  stitch_options opts;
  opts.mode = stitch_mode::chained;
  const ir::graph stitched = stitch_designs({&p0, &p1}, opts);
  EXPECT_EQ(ir::verify(stitched), "");
  // Part 1's primary inputs were replaced by part 0's outputs.
  EXPECT_EQ(stitched.inputs().size(), p0.inputs().size());
  EXPECT_GE(stitched.num_nodes(), p0.num_nodes() + p1.num_nodes() -
                                      p1.inputs().size());
}

TEST(StitchTest, RegistryStitchIsSeedStable) {
  const ir::graph a = stitch_registry(9, 2000);
  const ir::graph b = stitch_registry(9, 2000);
  EXPECT_EQ(graph_fingerprint(a), graph_fingerprint(b));
  EXPECT_GE(a.num_nodes(), 2000u);
}

class StitchScaleTest : public ::testing::TestWithParam<std::size_t> {};

// Satellite of the scale tentpole: the stitched stress designs are
// ir::verify-clean at 1k, 10k and 100k nodes (generation is O(n); the
// bounded-memory *scheduling* contract at these sizes lives in fuzz_test
// and isdc_fuzz --scale).
TEST_P(StitchScaleTest, VerifiesClean) {
  const std::size_t target = GetParam();
  const ir::graph g = stitch_registry(7, target);
  EXPECT_GE(g.num_nodes(), target);
  EXPECT_EQ(ir::verify(g), "");
}

INSTANTIATE_TEST_SUITE_P(Sizes, StitchScaleTest,
                         ::testing::Values(1000u, 10000u, 100000u),
                         [](const auto& info) {
                           return "n" + std::to_string(info.param);
                         });

}  // namespace
}  // namespace isdc::workloads
