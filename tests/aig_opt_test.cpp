#include <gtest/gtest.h>

#include "aig/balance.h"
#include "aig/refactor.h"
#include "aig/rewrite.h"
#include "lower/lowering.h"
#include "support/rng.h"
#include "synth/synthesis.h"
#include "test_util.h"
#include "workloads/registry.h"

namespace isdc::aig {
namespace {

using isdc::testing::random_aig;
using isdc::testing::simulation_equivalent;

TEST(BalanceTest, FlattensAndChain) {
  aig g;
  std::vector<literal> pis;
  for (int i = 0; i < 8; ++i) {
    pis.push_back(make_literal(g.add_pi()));
  }
  literal chain = pis[0];
  for (int i = 1; i < 8; ++i) {
    chain = g.create_and(chain, pis[i]);
  }
  g.add_po(chain);
  EXPECT_EQ(g.depth(), 7);
  const aig balanced = balance(g);
  EXPECT_EQ(balanced.depth(), 3);  // ceil(log2(8))
  rng r(1);
  EXPECT_TRUE(simulation_equivalent(g, balanced, r));
}

TEST(BalanceTest, RespectsArrivalTimes) {
  // Balancing a conjunction whose terms have different depths should put
  // the deep term near the root (Huffman over levels).
  aig g;
  std::vector<literal> pis;
  for (int i = 0; i < 5; ++i) {
    pis.push_back(make_literal(g.add_pi()));
  }
  // deep = 3-level chain; shallow terms are PIs.
  literal deep = g.create_and(pis[0], pis[1]);
  deep = g.create_and(deep, lit_not(pis[2]));
  literal all = g.create_and(deep, pis[3]);
  all = g.create_and(all, pis[4]);
  g.add_po(all);
  const aig balanced = balance(g);
  // Optimal depth: deep has level 2, so root is at most level 3; a naive
  // chain would be level 4.
  EXPECT_LE(balanced.depth(), 3);
  rng r(2);
  EXPECT_TRUE(simulation_equivalent(g, balanced, r));
}

class PassEquivalenceTest : public ::testing::TestWithParam<int> {};

TEST_P(PassEquivalenceTest, BalanceKeepsFunctionNeverDeepens) {
  rng r(static_cast<std::uint64_t>(GetParam()) * 7 + 3);
  const aig g = random_aig(r, 6, 120);
  const aig out = balance(g);
  EXPECT_LE(out.depth(), g.depth());
  rng r2(99);
  EXPECT_TRUE(simulation_equivalent(g, out, r2)) << "seed " << GetParam();
}

TEST_P(PassEquivalenceTest, RewriteKeepsFunction) {
  rng r(static_cast<std::uint64_t>(GetParam()) * 7 + 4);
  const aig g = random_aig(r, 6, 120);
  const aig out = rewrite(g);
  rng r2(98);
  EXPECT_TRUE(simulation_equivalent(g, out, r2)) << "seed " << GetParam();
}

TEST_P(PassEquivalenceTest, RefactorKeepsFunction) {
  rng r(static_cast<std::uint64_t>(GetParam()) * 7 + 5);
  const aig g = random_aig(r, 6, 120);
  const aig out = refactor(g);
  rng r2(97);
  EXPECT_TRUE(simulation_equivalent(g, out, r2)) << "seed " << GetParam();
}

TEST_P(PassEquivalenceTest, FullOptimizeScriptKeepsFunction) {
  rng r(static_cast<std::uint64_t>(GetParam()) * 7 + 6);
  const aig g = random_aig(r, 6, 100);
  const aig out = synth::optimize(g.cleanup());
  rng r2(96);
  EXPECT_TRUE(simulation_equivalent(g, out, r2)) << "seed " << GetParam();
}

INSTANTIATE_TEST_SUITE_P(Seeds, PassEquivalenceTest, ::testing::Range(0, 12));

TEST(OptimizeTest, LoweredAdderChainEquivalence) {
  // Real design: two chained 8-bit adders; optimization must preserve the
  // function exactly.
  ir::graph g("chain");
  ir::builder b(g);
  const ir::node_id x = b.input(8, "x");
  const ir::node_id y = b.input(8, "y");
  const ir::node_id z = b.input(8, "z");
  b.output(b.add(b.add(x, y), z));
  const lower::lowering_result lowered = lower::lower_graph(g);
  const aig optimized = synth::optimize(lowered.net.cleanup());
  rng r(42);
  EXPECT_TRUE(simulation_equivalent(lowered.net.cleanup(), optimized, r));
  EXPECT_LE(optimized.depth(), lowered.net.depth());
}

TEST(OptimizeTest, ReducesDepthOfUnbalancedLogic) {
  // A long conjunction with buried XORs: the script should shrink depth
  // substantially.
  aig g;
  std::vector<literal> pis;
  for (int i = 0; i < 16; ++i) {
    pis.push_back(make_literal(g.add_pi()));
  }
  literal acc = pis[0];
  for (int i = 1; i < 16; ++i) {
    acc = g.create_and(acc, i % 3 == 0 ? lit_not(pis[i]) : pis[i]);
  }
  g.add_po(acc);
  const aig out = synth::optimize(g.cleanup());
  EXPECT_LE(out.depth(), 5);
  rng r(17);
  EXPECT_TRUE(simulation_equivalent(g, out, r));
}

TEST(OptimizeTest, CrcRoundEquivalence) {
  // End-to-end: optimize a lowered real benchmark and check equivalence.
  const ir::graph g = workloads::build_crc32(8);
  const lower::lowering_result lowered = lower::lower_graph(g);
  const aig original = lowered.net.cleanup();
  const aig optimized = synth::optimize(original);
  rng r(123);
  EXPECT_TRUE(simulation_equivalent(original, optimized, r, 16));
}

}  // namespace
}  // namespace isdc::aig
