#include <gtest/gtest.h>

#include "sdc/bellman_ford.h"
#include "sdc/brute_force.h"
#include "sdc/mcmf_solver.h"
#include "sdc/system.h"
#include "support/rng.h"

namespace isdc::sdc {
namespace {

TEST(SystemTest, DedupKeepsTightestBound) {
  system sys(2);
  sys.add_constraint(0, 1, 5);
  sys.add_constraint(0, 1, 3);
  sys.add_constraint(0, 1, 7);
  ASSERT_EQ(sys.constraints().size(), 1u);
  EXPECT_EQ(sys.constraints()[0].bound, 3);
}

TEST(SystemTest, SelfConstraintNegativeIsInfeasible) {
  system sys(1);
  sys.add_constraint(0, 0, -1);
  EXPECT_TRUE(sys.trivially_infeasible());
  EXPECT_EQ(find_feasible(sys).st, solution::status::infeasible);
  EXPECT_EQ(solve(sys).st, solution::status::infeasible);
}

TEST(SystemTest, SelfConstraintNonNegativeIsVacuous) {
  system sys(1);
  sys.add_constraint(0, 0, 0);
  EXPECT_FALSE(sys.trivially_infeasible());
  EXPECT_TRUE(sys.constraints().empty());
}

TEST(SystemTest, SatisfiedByAndObjective) {
  system sys(2);
  sys.add_constraint(0, 1, 2);  // s0 - s1 <= 2
  sys.add_objective(0, 3);
  sys.add_objective(1, -1);
  EXPECT_TRUE(sys.satisfied_by({1, 0}));
  EXPECT_FALSE(sys.satisfied_by({3, 0}));
  EXPECT_EQ(sys.objective_at({2, 1}), 5);
}

TEST(BellmanFordTest, FeasibleChain) {
  // s1 >= s0 + 1, s2 >= s1 + 2  (as s0 - s1 <= -1, s1 - s2 <= -2).
  system sys(3);
  sys.add_constraint(0, 1, -1);
  sys.add_constraint(1, 2, -2);
  const solution sol = find_feasible(sys);
  ASSERT_TRUE(sol.ok());
  EXPECT_TRUE(sys.satisfied_by(sol.values));
}

TEST(BellmanFordTest, NegativeCycleDetected) {
  // s0 - s1 <= -1 and s1 - s0 <= 0 => s0 < s0, infeasible.
  system sys(2);
  sys.add_constraint(0, 1, -1);
  sys.add_constraint(1, 0, 0);
  EXPECT_EQ(find_feasible(sys).st, solution::status::infeasible);
  EXPECT_EQ(solve(sys).st, solution::status::infeasible);
}

TEST(McmfTest, SimpleChainOptimal) {
  // Minimize s2 with s1 >= s0 + 1, s2 >= s1 + 2, s0 = origin.
  system sys(3);
  sys.add_constraint(0, 1, -1);
  sys.add_constraint(1, 2, -2);
  // bound everything to the origin so the LP is bounded
  sys.add_constraint(1, 0, 10);
  sys.add_constraint(2, 0, 10);
  sys.add_constraint(0, 1, 10);
  sys.add_constraint(0, 2, 10);
  sys.add_objective(2, 1);
  const solution sol = solve(sys, 0);
  ASSERT_EQ(sol.st, solution::status::optimal);
  EXPECT_EQ(sol.values[0], 0);
  EXPECT_EQ(sol.values[2], 3);
  EXPECT_EQ(sol.objective, 3);
}

TEST(McmfTest, MaximizationViaNegativeCoefficient) {
  // Maximize s1 subject to s1 - s0 <= 4.
  system sys(2);
  sys.add_constraint(1, 0, 4);
  sys.add_constraint(0, 1, 0);
  sys.add_objective(1, -1);
  const solution sol = solve(sys, 0);
  ASSERT_EQ(sol.st, solution::status::optimal);
  EXPECT_EQ(sol.values[1], 4);
}

TEST(McmfTest, UnboundedDetected) {
  // Minimize s1 with only s0 - s1 <= 0: s1 can go to -infinity? No: s1 >= s0
  // bounds below. Minimize -s1 (maximize s1) with no upper bound instead.
  system sys(2);
  sys.add_constraint(0, 1, 0);  // s1 >= s0
  sys.add_objective(1, -1);
  EXPECT_EQ(solve(sys, 0).st, solution::status::unbounded);
}

TEST(McmfTest, ZeroObjectiveReturnsFeasible) {
  system sys(2);
  sys.add_constraint(0, 1, -3);
  const solution sol = solve(sys, 0);
  ASSERT_EQ(sol.st, solution::status::optimal);
  EXPECT_TRUE(sys.satisfied_by(sol.values));
}

/// Randomized cross-check against brute force: small systems, bounded box.
class McmfRandomTest : public ::testing::TestWithParam<int> {};

TEST_P(McmfRandomTest, MatchesBruteForceOptimum) {
  rng r(static_cast<std::uint64_t>(GetParam()));
  const int n = 2 + static_cast<int>(r.next_below(4));  // 2..5 vars
  system sys(n);
  // Random difference constraints.
  const int num_constraints = 3 + static_cast<int>(r.next_below(8));
  for (int i = 0; i < num_constraints; ++i) {
    const int u = static_cast<int>(r.next_below(n));
    const int v = static_cast<int>(r.next_below(n));
    sys.add_constraint(u, v, r.next_in(-3, 5));
  }
  // Box constraints so both solvers search the same bounded region:
  // 0 <= s_v - s_0 <= 6.
  for (int v = 1; v < n; ++v) {
    sys.add_constraint(0, v, 0);
    sys.add_constraint(v, 0, 6);
  }
  for (int v = 0; v < n; ++v) {
    sys.add_objective(v, r.next_in(-4, 4));
  }

  const solution exact = solve_brute_force(sys, 0, 6, 0);
  const solution fast = solve(sys, 0);
  if (exact.st == solution::status::infeasible) {
    EXPECT_EQ(fast.st, solution::status::infeasible) << "seed " << GetParam();
  } else {
    ASSERT_EQ(fast.st, solution::status::optimal) << "seed " << GetParam();
    EXPECT_TRUE(sys.satisfied_by(fast.values));
    EXPECT_EQ(fast.objective, exact.objective) << "seed " << GetParam();
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, McmfRandomTest, ::testing::Range(0, 60));

TEST(McmfTest, IntegralityOnTies) {
  // TU structure guarantees an integral optimum; spot-check a tie-heavy
  // instance.
  system sys(4);
  for (int v = 1; v < 4; ++v) {
    sys.add_constraint(0, v, 0);
    sys.add_constraint(v, 0, 2);
  }
  sys.add_constraint(1, 2, 0);
  sys.add_constraint(2, 3, 0);
  sys.add_objective(1, 1);
  sys.add_objective(3, -1);
  const solution sol = solve(sys, 0);
  ASSERT_EQ(sol.st, solution::status::optimal);
  for (const auto v : sol.values) {
    EXPECT_GE(v, 0);
    EXPECT_LE(v, 2);
  }
  EXPECT_EQ(sol.objective, -2);  // s1 = 0, s3 = 2
}

}  // namespace
}  // namespace isdc::sdc
