#include <gtest/gtest.h>

#include "sdc/bellman_ford.h"
#include "sdc/brute_force.h"
#include "sdc/incremental_solver.h"
#include "sdc/mcmf_solver.h"
#include "sdc/system.h"
#include "support/rng.h"

namespace isdc::sdc {
namespace {

TEST(SystemTest, DedupKeepsTightestBound) {
  system sys(2);
  sys.add_constraint(0, 1, 5);
  sys.add_constraint(0, 1, 3);
  sys.add_constraint(0, 1, 7);
  ASSERT_EQ(sys.constraints().size(), 1u);
  EXPECT_EQ(sys.constraints()[0].bound, 3);
}

TEST(SystemTest, SelfConstraintNegativeIsInfeasible) {
  system sys(1);
  sys.add_constraint(0, 0, -1);
  EXPECT_TRUE(sys.trivially_infeasible());
  EXPECT_EQ(find_feasible(sys).st, solution::status::infeasible);
  EXPECT_EQ(solve(sys).st, solution::status::infeasible);
}

TEST(SystemTest, SelfConstraintNonNegativeIsVacuous) {
  system sys(1);
  sys.add_constraint(0, 0, 0);
  EXPECT_FALSE(sys.trivially_infeasible());
  EXPECT_TRUE(sys.constraints().empty());
}

TEST(SystemTest, SatisfiedByAndObjective) {
  system sys(2);
  sys.add_constraint(0, 1, 2);  // s0 - s1 <= 2
  sys.add_objective(0, 3);
  sys.add_objective(1, -1);
  EXPECT_TRUE(sys.satisfied_by({1, 0}));
  EXPECT_FALSE(sys.satisfied_by({3, 0}));
  EXPECT_EQ(sys.objective_at({2, 1}), 5);
}

TEST(BellmanFordTest, FeasibleChain) {
  // s1 >= s0 + 1, s2 >= s1 + 2  (as s0 - s1 <= -1, s1 - s2 <= -2).
  system sys(3);
  sys.add_constraint(0, 1, -1);
  sys.add_constraint(1, 2, -2);
  const solution sol = find_feasible(sys);
  ASSERT_TRUE(sol.ok());
  EXPECT_TRUE(sys.satisfied_by(sol.values));
}

TEST(BellmanFordTest, NegativeCycleDetected) {
  // s0 - s1 <= -1 and s1 - s0 <= 0 => s0 < s0, infeasible.
  system sys(2);
  sys.add_constraint(0, 1, -1);
  sys.add_constraint(1, 0, 0);
  EXPECT_EQ(find_feasible(sys).st, solution::status::infeasible);
  EXPECT_EQ(solve(sys).st, solution::status::infeasible);
}

TEST(McmfTest, SimpleChainOptimal) {
  // Minimize s2 with s1 >= s0 + 1, s2 >= s1 + 2, s0 = origin.
  system sys(3);
  sys.add_constraint(0, 1, -1);
  sys.add_constraint(1, 2, -2);
  // bound everything to the origin so the LP is bounded
  sys.add_constraint(1, 0, 10);
  sys.add_constraint(2, 0, 10);
  sys.add_constraint(0, 1, 10);
  sys.add_constraint(0, 2, 10);
  sys.add_objective(2, 1);
  const solution sol = solve(sys, 0);
  ASSERT_EQ(sol.st, solution::status::optimal);
  EXPECT_EQ(sol.values[0], 0);
  EXPECT_EQ(sol.values[2], 3);
  EXPECT_EQ(sol.objective, 3);
}

TEST(McmfTest, MaximizationViaNegativeCoefficient) {
  // Maximize s1 subject to s1 - s0 <= 4.
  system sys(2);
  sys.add_constraint(1, 0, 4);
  sys.add_constraint(0, 1, 0);
  sys.add_objective(1, -1);
  const solution sol = solve(sys, 0);
  ASSERT_EQ(sol.st, solution::status::optimal);
  EXPECT_EQ(sol.values[1], 4);
}

TEST(McmfTest, UnboundedDetected) {
  // Minimize s1 with only s0 - s1 <= 0: s1 can go to -infinity? No: s1 >= s0
  // bounds below. Minimize -s1 (maximize s1) with no upper bound instead.
  system sys(2);
  sys.add_constraint(0, 1, 0);  // s1 >= s0
  sys.add_objective(1, -1);
  EXPECT_EQ(solve(sys, 0).st, solution::status::unbounded);
}

TEST(McmfTest, ZeroObjectiveReturnsFeasible) {
  system sys(2);
  sys.add_constraint(0, 1, -3);
  const solution sol = solve(sys, 0);
  ASSERT_EQ(sol.st, solution::status::optimal);
  EXPECT_TRUE(sys.satisfied_by(sol.values));
}

/// Randomized cross-check against brute force: small systems, bounded box.
class McmfRandomTest : public ::testing::TestWithParam<int> {};

TEST_P(McmfRandomTest, MatchesBruteForceOptimum) {
  rng r(static_cast<std::uint64_t>(GetParam()));
  const int n = 2 + static_cast<int>(r.next_below(4));  // 2..5 vars
  system sys(n);
  // Random difference constraints.
  const int num_constraints = 3 + static_cast<int>(r.next_below(8));
  for (int i = 0; i < num_constraints; ++i) {
    const int u = static_cast<int>(r.next_below(n));
    const int v = static_cast<int>(r.next_below(n));
    sys.add_constraint(u, v, r.next_in(-3, 5));
  }
  // Box constraints so both solvers search the same bounded region:
  // 0 <= s_v - s_0 <= 6.
  for (int v = 1; v < n; ++v) {
    sys.add_constraint(0, v, 0);
    sys.add_constraint(v, 0, 6);
  }
  for (int v = 0; v < n; ++v) {
    sys.add_objective(v, r.next_in(-4, 4));
  }

  const solution exact = solve_brute_force(sys, 0, 6, 0);
  const solution fast = solve(sys, 0);
  if (exact.st == solution::status::infeasible) {
    EXPECT_EQ(fast.st, solution::status::infeasible) << "seed " << GetParam();
  } else {
    ASSERT_EQ(fast.st, solution::status::optimal) << "seed " << GetParam();
    EXPECT_TRUE(sys.satisfied_by(fast.values));
    EXPECT_EQ(fast.objective, exact.objective) << "seed " << GetParam();
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, McmfRandomTest, ::testing::Range(0, 60));

/// Randomized incremental-vs-cold equivalence: apply a random mutation
/// sequence (tightenings, relaxations, objective deltas) to an
/// incremental_solver and after every step check it against a cold solve
/// of the same system and against brute force. Because every variable is
/// boxed to the origin, the canonical extraction applies and the warm
/// solver must reproduce the cold solver's values bit for bit.
class IncrementalRandomTest : public ::testing::TestWithParam<int> {};

TEST_P(IncrementalRandomTest, MatchesColdAndBruteForceAtEveryStep) {
  rng r(static_cast<std::uint64_t>(GetParam()) * 977 + 13);
  const int n = 3 + static_cast<int>(r.next_below(4));  // 3..6 vars
  system sys(n);
  // Box constraints tie every variable to the origin: 0 <= s_v - s_0 <= 6.
  for (int v = 1; v < n; ++v) {
    sys.add_constraint(0, v, 0);
    sys.add_constraint(v, 0, 6);
  }
  const int num_constraints = 2 + static_cast<int>(r.next_below(6));
  for (int i = 0; i < num_constraints; ++i) {
    const int u = static_cast<int>(r.next_below(n));
    const int v = static_cast<int>(r.next_below(n));
    if (u != v) {
      sys.add_constraint(u, v, r.next_in(-2, 6));
    }
  }
  for (int v = 0; v < n; ++v) {
    sys.add_objective(v, r.next_in(-4, 4));
  }

  incremental_solver inc(sys, 0);
  int expected_cold = 1;
  for (int step = 0; step < 10; ++step) {
    const solution fast = inc.solve();
    const solution cold = solve(inc.current_system(), 0);
    const solution exact = solve_brute_force(inc.current_system(), 0, 6, 0);
    ASSERT_EQ(fast.st, cold.st) << "seed " << GetParam() << " step " << step;
    if (exact.st == solution::status::infeasible) {
      EXPECT_EQ(fast.st, solution::status::infeasible)
          << "seed " << GetParam() << " step " << step;
    } else {
      ASSERT_EQ(fast.st, solution::status::optimal)
          << "seed " << GetParam() << " step " << step;
      EXPECT_TRUE(inc.current_system().satisfied_by(fast.values));
      EXPECT_EQ(fast.objective, exact.objective)
          << "seed " << GetParam() << " step " << step;
      // Warm and cold must agree on the exact assignment, not just the
      // objective: both extract the canonical minimal optimum.
      EXPECT_EQ(fast.values, cold.values)
          << "seed " << GetParam() << " step " << step;
    }
    if (fast.st != solution::status::optimal) {
      ++expected_cold;  // a failed solve invalidates the warm state
    }

    // Mutate: mostly tightenings (the ISDC direction), some relaxations
    // and objective deltas. Non-origin pairs only, so the box constraints
    // stay intact and brute force's [0, 6] range stays exhaustive.
    const int u = 1 + static_cast<int>(r.next_below(n - 1));
    int v = 1 + static_cast<int>(r.next_below(n - 1));
    if (u == v) {
      v = 1 + (v % (n - 1));
    }
    switch (r.next_below(4)) {
      case 0:
      case 1:
        inc.tighten(u, v, r.next_in(-2, 4));
        break;
      case 2:
        inc.set_bound(u, v, r.next_in(0, 8));  // relax (or add loose)
        break;
      default:
        inc.add_objective(u, r.next_in(-2, 2));
        break;
    }
  }
  // Warm solving actually engaged: only the first solve (plus recoveries
  // after infeasible steps) went cold. Cached and infeasible solves count
  // as neither, so the totals are upper bounds.
  EXPECT_LE(inc.stats().cold_solves,
            static_cast<std::uint64_t>(expected_cold));
  EXPECT_LE(inc.stats().warm_solves + inc.stats().cold_solves, 10u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, IncrementalRandomTest,
                         ::testing::Range(0, 80));

TEST(IncrementalTest, AddVarForcesColdButKeepsCorrectness) {
  system sys(2);
  sys.add_constraint(0, 1, 4);
  sys.add_constraint(1, 0, 4);
  sys.add_objective(1, 1);
  incremental_solver inc(sys, 0);
  ASSERT_EQ(inc.solve().st, solution::status::optimal);
  EXPECT_EQ(inc.stats().cold_solves, 1u);

  const var_id w = inc.add_var();
  inc.set_bound(w, 0, 5);
  inc.set_bound(0, w, 0);
  inc.add_objective(w, -1);  // maximize s_w -> 5
  const solution sol = inc.solve();
  ASSERT_EQ(sol.st, solution::status::optimal);
  EXPECT_EQ(sol.values[static_cast<std::size_t>(w)], 5);
  EXPECT_EQ(inc.stats().cold_solves, 2u);
}

TEST(IncrementalTest, RelaxationRecoversFromInfeasibility) {
  system sys(2);
  sys.add_constraint(0, 1, 2);
  sys.add_constraint(1, 0, 2);
  sys.add_objective(1, 1);
  incremental_solver inc(sys, 0);
  ASSERT_EQ(inc.solve().st, solution::status::optimal);

  // s_0 - s_1 <= -3 and s_1 - s_0 <= 2 is a negative cycle.
  inc.tighten(0, 1, -3);
  EXPECT_EQ(inc.solve().st, solution::status::infeasible);
  // Relaxing the bound restores feasibility; the next solve is cold (the
  // failed solve dropped the warm state) but must be correct.
  inc.set_bound(0, 1, -1);
  const solution sol = inc.solve();
  ASSERT_EQ(sol.st, solution::status::optimal);
  EXPECT_EQ(sol.values[1], 1);  // minimized s_1 >= s_0 + 1
  EXPECT_EQ(sol, solve(inc.current_system(), 0));
}

TEST(IncrementalTest, CachedSolutionReusedWhenUntouched) {
  system sys(2);
  sys.add_constraint(0, 1, 0);
  sys.add_constraint(1, 0, 3);
  sys.add_objective(1, 1);
  incremental_solver inc(sys, 0);
  const solution first = inc.solve();
  const solution again = inc.solve();
  EXPECT_EQ(first, again);
  EXPECT_EQ(inc.stats().cold_solves, 1u);
  EXPECT_EQ(inc.stats().warm_solves, 0u);  // cached, not re-solved
}

TEST(McmfTest, IntegralityOnTies) {
  // TU structure guarantees an integral optimum; spot-check a tie-heavy
  // instance.
  system sys(4);
  for (int v = 1; v < 4; ++v) {
    sys.add_constraint(0, v, 0);
    sys.add_constraint(v, 0, 2);
  }
  sys.add_constraint(1, 2, 0);
  sys.add_constraint(2, 3, 0);
  sys.add_objective(1, 1);
  sys.add_objective(3, -1);
  const solution sol = solve(sys, 0);
  ASSERT_EQ(sol.st, solution::status::optimal);
  for (const auto v : sol.values) {
    EXPECT_GE(v, 0);
    EXPECT_LE(v, 2);
  }
  EXPECT_EQ(sol.objective, -2);  // s1 = 0, s3 = 2
}

}  // namespace
}  // namespace isdc::sdc
