// Tests for the telemetry subsystem: metrics registry (counters, gauges,
// log-bucketed histograms with pinned quantile semantics), RAII trace
// spans with an injected clock, chrome-trace export, the minimal JSON
// parser, and the engine integration (spans for all six stages; registry
// cache counters mirroring the legacy evaluation_cache counters).
#include <atomic>
#include <cmath>
#include <cstdint>
#include <set>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "engine/engine.h"
#include "ir/builder.h"
#include "support/failpoint.h"
#include "telemetry/json.h"
#include "telemetry/metrics.h"
#include "telemetry/trace.h"

namespace isdc::telemetry {
namespace {

// ---------------------------------------------------------------------------
// Counters / gauges / registry

TEST(CounterTest, AddAndReset) {
  counter c;
  EXPECT_EQ(c.value(), 0u);
  c.add();
  c.add(41);
  EXPECT_EQ(c.value(), 42u);
  c.reset();
  EXPECT_EQ(c.value(), 0u);
}

TEST(GaugeTest, SetAddReset) {
  gauge g;
  g.set(2.5);
  EXPECT_DOUBLE_EQ(g.value(), 2.5);
  g.add(1.5);
  EXPECT_DOUBLE_EQ(g.value(), 4.0);
  g.reset();
  EXPECT_DOUBLE_EQ(g.value(), 0.0);
}

TEST(RegistryTest, ReferencesAreStableAndResetPreservesThem) {
  counter& a = get_counter("test.registry.stable");
  a.add(7);
  // Same name -> same object, even after many other registrations.
  for (int i = 0; i < 100; ++i) {
    get_counter("test.registry.filler." + std::to_string(i));
  }
  counter& b = get_counter("test.registry.stable");
  EXPECT_EQ(&a, &b);
  EXPECT_EQ(b.value(), 7u);

  gauge& g1 = get_gauge("test.registry.gauge");
  histogram& h1 = get_histogram("test.registry.hist");
  reset_metrics();
  // reset_values zeroes but never invalidates cached references.
  EXPECT_EQ(a.value(), 0u);
  EXPECT_EQ(&get_gauge("test.registry.gauge"), &g1);
  EXPECT_EQ(&get_histogram("test.registry.hist"), &h1);
}

TEST(RegistryTest, ExplicitBoundariesApplyOnFirstCreationOnly) {
  const std::vector<double> custom{1.0, 10.0, 100.0};
  histogram& h = get_histogram("test.registry.custom_bounds", custom);
  EXPECT_EQ(h.boundaries(), custom);
  // A later lookup with different boundaries returns the existing one.
  const std::vector<double> other{5.0, 50.0};
  histogram& again = get_histogram("test.registry.custom_bounds", other);
  EXPECT_EQ(&h, &again);
  EXPECT_EQ(again.boundaries(), custom);
}

TEST(RegistryTest, CounterHammerIsExact) {
  // Concurrent add()s over one shared counter: relaxed atomics still
  // yield an exact total (this is also the TSan exercise).
  counter& c = get_counter("test.hammer.counter");
  c.reset();
  constexpr int kThreads = 8;
  constexpr int kPerThread = 20000;
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&c] {
      for (int i = 0; i < kPerThread; ++i) {
        c.add();
      }
    });
  }
  for (std::thread& w : workers) {
    w.join();
  }
  EXPECT_EQ(c.value(), static_cast<std::uint64_t>(kThreads) * kPerThread);
}

TEST(RegistryTest, ConcurrentHistogramRecordKeepsExactCountAndSum) {
  histogram& h = get_histogram("test.hammer.hist");
  h.reset();
  constexpr int kThreads = 8;
  constexpr int kPerThread = 10000;
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&h] {
      for (int i = 0; i < kPerThread; ++i) {
        h.record(2.0);
      }
    });
  }
  for (std::thread& w : workers) {
    w.join();
  }
  const histogram::snapshot_data s = h.snapshot();
  EXPECT_EQ(s.count, static_cast<std::uint64_t>(kThreads) * kPerThread);
  EXPECT_DOUBLE_EQ(s.sum, 2.0 * kThreads * kPerThread);
  EXPECT_DOUBLE_EQ(s.min, 2.0);
  EXPECT_DOUBLE_EQ(s.max, 2.0);
}

// ---------------------------------------------------------------------------
// Histogram semantics

TEST(HistogramTest, ExponentialBoundaries) {
  const std::vector<double> b = histogram::exponential_boundaries(1.0, 2.0, 5);
  ASSERT_EQ(b.size(), 5u);
  EXPECT_DOUBLE_EQ(b[0], 1.0);
  EXPECT_DOUBLE_EQ(b[1], 2.0);
  EXPECT_DOUBLE_EQ(b[2], 4.0);
  EXPECT_DOUBLE_EQ(b[3], 8.0);
  EXPECT_DOUBLE_EQ(b[4], 16.0);
}

TEST(HistogramTest, BucketAssignmentUsesUpperBounds) {
  // Bucket i holds boundaries[i-1] < v <= boundaries[i]; the implicit
  // last bucket catches the overflow.
  histogram h({1.0, 2.0, 4.0});
  h.record(1.0);   // bucket 0 (v <= 1.0)
  h.record(1.5);   // bucket 1
  h.record(2.0);   // bucket 1 (upper bound inclusive)
  h.record(3.0);   // bucket 2
  h.record(100.0); // overflow
  const histogram::snapshot_data s = h.snapshot();
  ASSERT_EQ(s.buckets.size(), 4u);
  EXPECT_EQ(s.buckets[0], 1u);
  EXPECT_EQ(s.buckets[1], 2u);
  EXPECT_EQ(s.buckets[2], 1u);
  EXPECT_EQ(s.buckets[3], 1u);
  EXPECT_EQ(s.count, 5u);
  EXPECT_DOUBLE_EQ(s.min, 1.0);
  EXPECT_DOUBLE_EQ(s.max, 100.0);
  EXPECT_DOUBLE_EQ(s.sum, 107.5);
  EXPECT_DOUBLE_EQ(s.mean(), 21.5);
}

TEST(HistogramTest, GoldenQuantiles) {
  // Pin the documented interpolation rule: rank r = q * count; walk
  // buckets to the one whose cumulative count reaches r; interpolate
  // linearly between the bucket's bounds by the within-bucket fraction.
  // First bucket's lower bound is the observed min; clamped to [min,max].
  histogram h({10.0, 20.0, 40.0});
  for (int i = 0; i < 10; ++i) {
    h.record(11.0 + i);  // 11..20, all land in bucket 1 (10 < v <= 20)
  }
  const histogram::snapshot_data s = h.snapshot();
  ASSERT_EQ(s.count, 10u);
  EXPECT_DOUBLE_EQ(s.min, 11.0);
  EXPECT_DOUBLE_EQ(s.max, 20.0);
  // All mass sits in bucket 1 whose raw bounds are [10, 20]; the lower
  // bound tightens to the observed min (11). Rank r = 5 for p50: fraction
  // below = 5/10, interpolated = 11 + 0.5 * (20 - 11) = 15.5.
  EXPECT_DOUBLE_EQ(s.quantile(0.5), 15.5);
  // p90: r = 9 -> 11 + 0.9 * 9 = 19.1.
  EXPECT_NEAR(s.quantile(0.9), 19.1, 1e-9);
  // p99: r = 9.9 -> 11 + 0.99 * 9 = 19.91.
  EXPECT_NEAR(s.quantile(0.99), 19.91, 1e-9);
  // q = 0 pins to the (tightened) lower bound, q = 1 to the max.
  EXPECT_DOUBLE_EQ(s.quantile(0.0), 11.0);
  EXPECT_DOUBLE_EQ(s.quantile(1.0), 20.0);
}

TEST(HistogramTest, QuantileSpansMultipleBuckets) {
  histogram h({10.0, 20.0, 40.0});
  // 5 values in bucket 0 (min 2), 5 in bucket 2 (max 40).
  for (int i = 0; i < 5; ++i) {
    h.record(2.0 + i);    // 2..6
    h.record(36.0 + i);   // 36..40
  }
  const histogram::snapshot_data s = h.snapshot();
  ASSERT_EQ(s.count, 10u);
  // p50: r = 5 lands exactly at the end of bucket 0, whose bounds are
  // [min=2, 10]: 2 + (5/5) * (10 - 2) = 10.
  EXPECT_DOUBLE_EQ(s.quantile(0.5), 10.0);
  // p90: r = 9 -> bucket 2 ([20, 40]) holds ranks 5..10; fraction
  // (9 - 5) / 5 = 0.8 -> 20 + 0.8 * 20 = 36.
  EXPECT_DOUBLE_EQ(s.quantile(0.9), 36.0);
}

TEST(HistogramTest, OverflowBucketInterpolatesToObservedMax) {
  histogram h({10.0});
  h.record(50.0);
  h.record(100.0);
  const histogram::snapshot_data s = h.snapshot();
  // Both values overflow; the overflow bucket's bounds tighten to the
  // observed [min=50, max=100]. p50: r = 1 -> 50 + (1/2) * 50 = 75.
  EXPECT_DOUBLE_EQ(s.quantile(0.5), 75.0);
  EXPECT_DOUBLE_EQ(s.quantile(1.0), 100.0);
}

TEST(HistogramTest, EmptyHistogramIsAllZero) {
  histogram h({1.0, 2.0});
  const histogram::snapshot_data s = h.snapshot();
  EXPECT_EQ(s.count, 0u);
  EXPECT_DOUBLE_EQ(s.min, 0.0);
  EXPECT_DOUBLE_EQ(s.max, 0.0);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.quantile(0.5), 0.0);
}

// ---------------------------------------------------------------------------
// JSON parser

TEST(JsonTest, ParsesScalarsArraysObjects) {
  const json::value v = json::parse(
      R"({"a": 1.5, "b": [true, false, null, "x\né"], "c": {"d": -2e3}})");
  ASSERT_TRUE(v.is_object());
  EXPECT_DOUBLE_EQ(v.at("a").as_number(), 1.5);
  const json::array& arr = v.at("b").as_array();
  ASSERT_EQ(arr.size(), 4u);
  EXPECT_TRUE(arr[0].as_bool());
  EXPECT_FALSE(arr[1].as_bool());
  EXPECT_TRUE(arr[2].is_null());
  EXPECT_EQ(arr[3].as_string(), "x\n\xc3\xa9");
  EXPECT_DOUBLE_EQ(v.at("c").at("d").as_number(), -2000.0);
  EXPECT_TRUE(v.contains("a"));
  EXPECT_FALSE(v.contains("zzz"));
  EXPECT_DOUBLE_EQ(v.get_or("missing", 9.0), 9.0);
}

TEST(JsonTest, ParsesSurrogatePairs) {
  // U+1F600 as a surrogate pair -> 4-byte UTF-8.
  const json::value v = json::parse(R"(["😀"])");
  EXPECT_EQ(v.as_array()[0].as_string(), "\xf0\x9f\x98\x80");
}

TEST(JsonTest, RejectsMalformedInput) {
  EXPECT_THROW(json::parse(""), std::runtime_error);
  EXPECT_THROW(json::parse("{"), std::runtime_error);
  EXPECT_THROW(json::parse("[1,]"), std::runtime_error);
  EXPECT_THROW(json::parse("{\"a\" 1}"), std::runtime_error);
  EXPECT_THROW(json::parse("truish"), std::runtime_error);
  EXPECT_THROW(json::parse("\"unterminated"), std::runtime_error);
  EXPECT_THROW(json::parse("1 2"), std::runtime_error);  // trailing garbage
  EXPECT_THROW(json::parse("[1, -]"), std::runtime_error);
  EXPECT_THROW(json::parse("[1.]"), std::runtime_error);
}

TEST(JsonTest, TypeMismatchThrows) {
  const json::value v = json::parse("[1]");
  EXPECT_THROW(v.as_object(), std::runtime_error);
  EXPECT_THROW(v.as_array()[0].as_string(), std::runtime_error);
}

// ---------------------------------------------------------------------------
// Snapshot JSON round-trip

TEST(SnapshotTest, JsonRoundTripsThroughParser) {
  reset_metrics();
  get_counter("test.snap.counter").add(12);
  get_gauge("test.snap.gauge").set(3.25);
  histogram& h = get_histogram("test.snap.hist");
  h.record(5.0);
  h.record(9.0);

  const json::value v = json::parse(metrics_json());
  EXPECT_DOUBLE_EQ(v.at("counters").at("test.snap.counter").as_number(),
                   12.0);
  EXPECT_DOUBLE_EQ(v.at("gauges").at("test.snap.gauge").as_number(), 3.25);
  const json::value& hist = v.at("histograms").at("test.snap.hist");
  EXPECT_DOUBLE_EQ(hist.at("count").as_number(), 2.0);
  EXPECT_DOUBLE_EQ(hist.at("sum").as_number(), 14.0);
  EXPECT_DOUBLE_EQ(hist.at("min").as_number(), 5.0);
  EXPECT_DOUBLE_EQ(hist.at("max").as_number(), 9.0);
  EXPECT_DOUBLE_EQ(hist.at("mean").as_number(), 7.0);
  // The snapshot carries the same quantiles the in-memory rule computes.
  const histogram::snapshot_data s = h.snapshot();
  EXPECT_DOUBLE_EQ(hist.at("p50").as_number(), s.p50());
  EXPECT_DOUBLE_EQ(hist.at("p99").as_number(), s.p99());
  EXPECT_EQ(hist.at("boundaries").as_array().size(), s.boundaries.size());
  EXPECT_EQ(hist.at("buckets").as_array().size(), s.buckets.size());
}

TEST(SnapshotTest, FailpointMirrorViaCollectProcessMetrics) {
  reset_metrics();
  {
    failpoint::scoped_arm arm("telemetry.test.site=fail@n=1");
    // One fire, one further (non-firing) call at the site.
    EXPECT_NE(failpoint::maybe_fail("telemetry.test.site"),
              failpoint::kind::none);
    EXPECT_EQ(failpoint::maybe_fail("telemetry.test.site"),
              failpoint::kind::none);
    collect_process_metrics();
    EXPECT_EQ(get_counter("failpoint.telemetry.test.site.calls").value(), 2u);
    EXPECT_EQ(get_counter("failpoint.telemetry.test.site.fires").value(), 1u);
    // The mirror is reset+add, not accumulate: collecting twice must not
    // double the values.
    collect_process_metrics();
    EXPECT_EQ(get_counter("failpoint.telemetry.test.site.calls").value(), 2u);
    EXPECT_EQ(get_counter("failpoint.telemetry.test.site.fires").value(), 1u);
  }
  EXPECT_GT(get_gauge("process.peak_rss_kb").value(), 0.0);
}

// ---------------------------------------------------------------------------
// Trace spans

// Deterministic clock for span tests: each call advances 100 us.
std::atomic<std::uint64_t> fake_clock_ticks{0};
std::uint64_t fake_clock() {
  return fake_clock_ticks.fetch_add(1) * 100;
}

class ScopedFakeClock {
public:
  ScopedFakeClock() {
    fake_clock_ticks.store(0);
    set_trace_clock(&fake_clock);
  }
  ~ScopedFakeClock() {
    set_trace_clock(nullptr);
    stop_tracing();
  }
};

TEST(TraceTest, DisabledSpanCollectsNothing) {
  stop_tracing();
  {
    const span sp("test.trace.noop", "detail");
  }
  EXPECT_FALSE(tracing_active());
}

TEST(TraceTest, DeterministicSpansWithInjectedClock) {
  ScopedFakeClock clock;
  start_tracing();
  EXPECT_TRUE(tracing_active());
  {
    const span outer("test.trace.outer", "job-7");  // ts 0
    {
      const span inner("test.trace.inner");  // ts 100, ends at 200
    }
  }  // outer ends at 300
  stop_tracing();

  const std::vector<trace_event> events = collected_events();
  ASSERT_EQ(events.size(), 2u);
  // Sorted by ts: outer (ts 0) before inner (ts 100).
  EXPECT_STREQ(events[0].name, "test.trace.outer");
  EXPECT_STREQ(events[0].detail, "job-7");
  EXPECT_EQ(events[0].ts_us, 0u);
  EXPECT_EQ(events[0].dur_us, 300u);
  EXPECT_STREQ(events[1].name, "test.trace.inner");
  EXPECT_STREQ(events[1].detail, "");
  EXPECT_EQ(events[1].ts_us, 100u);
  EXPECT_EQ(events[1].dur_us, 100u);
  // Both on the same thread -> same dense tid, assigned from 1.
  EXPECT_EQ(events[0].tid, 1u);
  EXPECT_EQ(events[1].tid, 1u);
  EXPECT_EQ(dropped_events(), 0u);
}

TEST(TraceTest, NamesAreTruncatedNotOverrun) {
  ScopedFakeClock clock;
  start_tracing();
  const std::string long_name(200, 'n');
  const std::string long_detail(200, 'd');
  {
    const span sp(long_name, long_detail);
  }
  stop_tracing();
  const std::vector<trace_event> events = collected_events();
  ASSERT_EQ(events.size(), 1u);
  // Fixed buffers keep a terminating NUL.
  EXPECT_EQ(std::string(events[0].name), std::string(47, 'n'));
  EXPECT_EQ(std::string(events[0].detail), std::string(23, 'd'));
}

TEST(TraceTest, RingOverflowDropsOldestAndCounts) {
  ScopedFakeClock clock;
  start_tracing(/*events_per_thread=*/4);
  for (int i = 0; i < 10; ++i) {
    const span sp("test.trace.ring." + std::to_string(i));
  }
  stop_tracing();
  const std::vector<trace_event> events = collected_events();
  ASSERT_EQ(events.size(), 4u);
  EXPECT_EQ(dropped_events(), 6u);
  // The survivors are the newest four, oldest-first.
  EXPECT_STREQ(events[0].name, "test.trace.ring.6");
  EXPECT_STREQ(events[3].name, "test.trace.ring.9");
}

TEST(TraceTest, StartTracingClearsPriorEventsAndReassignsTids) {
  ScopedFakeClock clock;
  start_tracing();
  {
    const span sp("test.trace.first");
  }
  start_tracing();  // clears
  EXPECT_TRUE(collected_events().empty());
  {
    const span sp("test.trace.second");
  }
  stop_tracing();
  const std::vector<trace_event> events = collected_events();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_STREQ(events[0].name, "test.trace.second");
  EXPECT_EQ(events[0].tid, 1u);  // tid assignment restarts per start_tracing
}

TEST(TraceTest, SpansFromManyThreadsGetDenseTids) {
  ScopedFakeClock clock;
  start_tracing();
  constexpr int kThreads = 4;
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([t] {
      for (int i = 0; i < 5; ++i) {
        const span sp("test.trace.mt", "t" + std::to_string(t));
      }
    });
  }
  for (std::thread& w : workers) {
    w.join();
  }
  stop_tracing();
  const std::vector<trace_event> events = collected_events();
  ASSERT_EQ(events.size(), 5u * kThreads);
  std::set<std::uint32_t> tids;
  for (const trace_event& e : events) {
    tids.insert(e.tid);
  }
  ASSERT_EQ(tids.size(), static_cast<std::size_t>(kThreads));
  EXPECT_EQ(*tids.begin(), 1u);  // dense, starting at 1
  EXPECT_EQ(*tids.rbegin(), static_cast<std::uint32_t>(kThreads));
}

TEST(TraceTest, ChromeTraceJsonSchemaRoundTrip) {
  ScopedFakeClock clock;
  start_tracing();
  {
    const span sp("engine.stage.fake", "w1");  // ts 0, dur 100
  }
  {
    const span sp("cache.fake");  // ts 200, dur 100
  }
  stop_tracing();

  std::ostringstream out;
  write_chrome_trace(out);
  const json::value v = json::parse(out.str());
  ASSERT_TRUE(v.is_object());
  const json::array& evs = v.at("traceEvents").as_array();
  ASSERT_EQ(evs.size(), 2u);

  const json::value& e0 = evs[0];
  EXPECT_EQ(e0.at("name").as_string(), "engine.stage.fake");
  // Category = first dotted component of the name.
  EXPECT_EQ(e0.at("cat").as_string(), "engine");
  EXPECT_EQ(e0.at("ph").as_string(), "X");
  EXPECT_DOUBLE_EQ(e0.at("ts").as_number(), 0.0);
  EXPECT_DOUBLE_EQ(e0.at("dur").as_number(), 100.0);
  EXPECT_TRUE(e0.contains("pid"));
  EXPECT_TRUE(e0.contains("tid"));
  EXPECT_EQ(e0.at("args").at("detail").as_string(), "w1");

  const json::value& e1 = evs[1];
  EXPECT_EQ(e1.at("cat").as_string(), "cache");
  // No detail -> no args block.
  EXPECT_FALSE(e1.contains("args"));
}

// ---------------------------------------------------------------------------
// Engine integration

/// Deterministic downstream: delay derived from the graph size.
class sized_downstream final : public core::downstream_tool {
public:
  double subgraph_delay_ps(const ir::graph& g) const override {
    return 500.0 + 10.0 * static_cast<double>(g.num_nodes());
  }
  std::string name() const override { return "sized"; }
};

ir::graph integration_graph() {
  ir::graph g("chain");
  ir::builder bl(g);
  ir::node_id v = bl.input(32, "x");
  const ir::node_id y = bl.input(32, "y");
  for (int i = 0; i < 8; ++i) {
    v = bl.add(v, y);
  }
  g.mark_output(v);
  return g;
}

core::isdc_options integration_options() {
  core::isdc_options opts;
  opts.base.clock_period_ps = 2500.0;
  opts.max_iterations = 4;
  opts.subgraphs_per_iteration = 2;
  opts.num_threads = 2;
  return opts;
}

TEST(EngineTelemetryTest, RunEmitsAllSixStageSpansAndMirrorsCacheCounters) {
  const synth::delay_model model{synth::synthesis_options{}};
  const ir::graph g = integration_graph();
  sized_downstream tool;

  reset_metrics();
  start_tracing();
  engine::engine e;
  const core::isdc_result result =
      e.run(g, tool, integration_options(), &model);
  stop_tracing();
  ASSERT_GT(result.iterations, 0);

  // Every one of the six stages appears as a span and as a wall-time
  // histogram, plus the engine.run umbrella with the tool name as detail.
  std::set<std::string> span_names;
  bool saw_run_span_with_tool_detail = false;
  for (const trace_event& ev : collected_events()) {
    span_names.insert(ev.name);
    if (std::string_view(ev.name) == "engine.run" &&
        std::string_view(ev.detail) == "sized") {
      saw_run_span_with_tool_detail = true;
    }
  }
  EXPECT_TRUE(saw_run_span_with_tool_detail);
  const char* stages[] = {"enumerate", "rank",   "expand",
                          "evaluate", "update", "resolve"};
  for (const char* st : stages) {
    const std::string span_name = "engine.stage." + std::string(st);
    EXPECT_TRUE(span_names.contains(span_name)) << span_name;
    const histogram::snapshot_data s =
        get_histogram(span_name + ".wall_us").snapshot();
    EXPECT_GT(s.count, 0u) << span_name;
  }

  // Registry mirrors of the legacy cache counters are exact (metrics were
  // reset immediately before the run, so global == this engine's cache).
  const engine::evaluation_cache::counters legacy = e.cache().stats();
  EXPECT_EQ(get_counter("cache.hit").value(), legacy.hits);
  EXPECT_EQ(get_counter("cache.miss").value(), legacy.misses);
  EXPECT_EQ(get_counter("cache.coalesced").value(), legacy.coalesced);
  EXPECT_GT(legacy.hits + legacy.misses, 0u);

  EXPECT_EQ(get_counter("engine.runs").value(), 1u);
  EXPECT_EQ(get_counter("engine.iterations").value(),
            static_cast<std::uint64_t>(result.iterations));
}

TEST(EngineTelemetryTest, ResultIdenticalWithTelemetryOnAndOff) {
  const synth::delay_model model{synth::synthesis_options{}};
  const ir::graph g = integration_graph();
  sized_downstream tool_a;
  sized_downstream tool_b;

  stop_tracing();
  engine::engine cold;
  const core::isdc_result off =
      cold.run(g, tool_a, integration_options(), &model);

  start_tracing();
  engine::engine hot;
  const core::isdc_result on =
      hot.run(g, tool_b, integration_options(), &model);
  stop_tracing();

  EXPECT_EQ(off.final_schedule, on.final_schedule);
  EXPECT_EQ(off.iterations, on.iterations);
  EXPECT_EQ(off.delays, on.delays);
}

}  // namespace
}  // namespace isdc::telemetry
