// Functional correctness of the word-level -> gate-level lowering: for
// every opcode and a sweep of widths, the lowered AIG must compute exactly
// what the IR interpreter computes.
#include <gtest/gtest.h>

#include "aig/simulate.h"
#include "ir/builder.h"
#include "ir/evaluate.h"
#include "lower/lowering.h"
#include "support/rng.h"
#include "test_util.h"

namespace isdc::lower {
namespace {

/// Lowers `g` and checks 64 random input vectors per round against the IR
/// interpreter.
void expect_lowering_matches(const ir::graph& g, rng& r, int rounds = 4) {
  const lowering_result lowered = lower_graph(g);
  for (int round = 0; round < rounds; ++round) {
    // Random word per IR input, then expand to per-bit PI patterns. Using
    // the same word for all 64 lanes of a bit keeps expansion simple:
    // instead we give each lane an independent word by transposing 64
    // random vectors.
    std::vector<std::vector<std::uint64_t>> vectors(64);
    for (auto& vec : vectors) {
      vec = isdc::testing::random_inputs(g, r);
    }
    // PI patterns: bit `lane` of pattern word for PI k = bit of vector.
    std::vector<std::uint64_t> patterns(lowered.net.num_pis(), 0);
    std::size_t pi = 0;
    for (std::size_t i = 0; i < g.inputs().size(); ++i) {
      const std::uint32_t width = g.at(g.inputs()[i]).width;
      for (std::uint32_t bit = 0; bit < width; ++bit, ++pi) {
        std::uint64_t word = 0;
        for (int lane = 0; lane < 64; ++lane) {
          word |= ((vectors[static_cast<std::size_t>(lane)][i] >> bit) & 1)
                  << lane;
        }
        patterns[pi] = word;
      }
    }
    const auto po_words = lowered.net.pos();
    const auto sim = aig::simulate(lowered.net, patterns);
    for (int lane = 0; lane < 64; ++lane) {
      const auto expected =
          ir::evaluate(g, vectors[static_cast<std::size_t>(lane)]);
      std::size_t po = 0;
      for (std::size_t out = 0; out < g.outputs().size(); ++out) {
        const std::uint32_t width = g.at(g.outputs()[out]).width;
        std::uint64_t value = 0;
        for (std::uint32_t bit = 0; bit < width; ++bit, ++po) {
          const std::uint64_t po_bit =
              (aig::literal_value(po_words[po], sim) >> lane) & 1;
          value |= po_bit << bit;
        }
        EXPECT_EQ(value, expected[out])
            << "output " << out << " lane " << lane;
      }
    }
  }
}

struct op_case {
  const char* name;
  std::function<void(ir::builder&, std::uint32_t)> build;
};

class LoweringOpTest
    : public ::testing::TestWithParam<std::tuple<op_case, std::uint32_t>> {};

TEST_P(LoweringOpTest, MatchesInterpreter) {
  const auto& [c, width] = GetParam();
  ir::graph g(c.name);
  ir::builder b(g);
  c.build(b, width);
  rng r(width * 1000003u + static_cast<std::uint64_t>(c.name[0]));
  expect_lowering_matches(g, r);
}

const op_case op_cases[] = {
    {"add", [](ir::builder& b, std::uint32_t w) {
       b.output(b.add(b.input(w, "a"), b.input(w, "b")));
     }},
    {"sub", [](ir::builder& b, std::uint32_t w) {
       b.output(b.sub(b.input(w, "a"), b.input(w, "b")));
     }},
    {"neg", [](ir::builder& b, std::uint32_t w) {
       b.output(b.neg(b.input(w, "a")));
     }},
    {"mul", [](ir::builder& b, std::uint32_t w) {
       b.output(b.mul(b.input(w, "a"), b.input(w, "b")));
     }},
    {"band", [](ir::builder& b, std::uint32_t w) {
       b.output(b.band(b.input(w, "a"), b.input(w, "b")));
     }},
    {"bor", [](ir::builder& b, std::uint32_t w) {
       b.output(b.bor(b.input(w, "a"), b.input(w, "b")));
     }},
    {"bxor", [](ir::builder& b, std::uint32_t w) {
       b.output(b.bxor(b.input(w, "a"), b.input(w, "b")));
     }},
    {"bnot", [](ir::builder& b, std::uint32_t w) {
       b.output(b.bnot(b.input(w, "a")));
     }},
    {"eq", [](ir::builder& b, std::uint32_t w) {
       b.output(b.eq(b.input(w, "a"), b.input(w, "b")));
     }},
    {"ne", [](ir::builder& b, std::uint32_t w) {
       b.output(b.ne(b.input(w, "a"), b.input(w, "b")));
     }},
    {"ult", [](ir::builder& b, std::uint32_t w) {
       b.output(b.ult(b.input(w, "a"), b.input(w, "b")));
     }},
    {"ule", [](ir::builder& b, std::uint32_t w) {
       b.output(b.ule(b.input(w, "a"), b.input(w, "b")));
     }},
    {"mux", [](ir::builder& b, std::uint32_t w) {
       b.output(b.mux(b.input(1, "s"), b.input(w, "a"), b.input(w, "b")));
     }},
    {"shl_var", [](ir::builder& b, std::uint32_t w) {
       b.output(b.shl(b.input(w, "a"), b.input(8, "amt")));
     }},
    {"shr_var", [](ir::builder& b, std::uint32_t w) {
       b.output(b.shr(b.input(w, "a"), b.input(8, "amt")));
     }},
    {"rotl_var", [](ir::builder& b, std::uint32_t w) {
       b.output(b.rotl(b.input(w, "a"), b.input(8, "amt")));
     }},
    {"rotr_var", [](ir::builder& b, std::uint32_t w) {
       b.output(b.rotr(b.input(w, "a"), b.input(8, "amt")));
     }},
    {"shl_const", [](ir::builder& b, std::uint32_t w) {
       b.output(b.shli(b.input(w, "a"), w / 3 + 1));
     }},
    {"shr_const", [](ir::builder& b, std::uint32_t w) {
       b.output(b.shri(b.input(w, "a"), w / 3 + 1));
     }},
    {"rotr_const", [](ir::builder& b, std::uint32_t w) {
       b.output(b.rotri(b.input(w, "a"), w / 3 + 1));
     }},
    {"rotl_const", [](ir::builder& b, std::uint32_t w) {
       b.output(b.rotli(b.input(w, "a"), w / 3 + 1));
     }},
    {"slice", [](ir::builder& b, std::uint32_t w) {
       b.output(b.slice(b.input(w, "a"), w / 4, w - w / 4));
     }},
    {"zext", [](ir::builder& b, std::uint32_t w) {
       if (w < 64) {
         b.output(b.zext(b.input(w, "a"), w + 1));
       } else {
         b.output(b.input(w, "a"));
       }
     }},
    {"sext", [](ir::builder& b, std::uint32_t w) {
       if (w < 64) {
         b.output(b.sext(b.input(w, "a"), w + 1));
       } else {
         b.output(b.input(w, "a"));
       }
     }},
    {"concat", [](ir::builder& b, std::uint32_t w) {
       const std::uint32_t half = std::min(w, 32u);
       b.output(b.concat(b.input(half, "hi"), b.input(half, "lo")));
     }},
};

INSTANTIATE_TEST_SUITE_P(
    OpsTimesWidths, LoweringOpTest,
    ::testing::Combine(::testing::ValuesIn(op_cases),
                       ::testing::Values(1u, 2u, 5u, 8u, 13u, 32u, 64u)),
    [](const auto& info) {
      return std::string(std::get<0>(info.param).name) + "_w" +
             std::to_string(std::get<1>(info.param));
    });

TEST(LoweringTest, ConstantShiftsProduceNoGates) {
  ir::graph g("wiring");
  ir::builder b(g);
  const ir::node_id x = b.input(16, "x");
  b.output(b.rotri(b.shli(x, 3), 5));
  const lowering_result lowered = lower_graph(g);
  EXPECT_EQ(lowered.net.num_ands(), 0u);
}

TEST(LoweringTest, NonPowerOfTwoVariableRotate) {
  // Width 12 is not a power of two; the layered 2^k mod 12 rotator must
  // still implement amount mod 12 for any amount.
  ir::graph g("rot12");
  ir::builder b(g);
  b.output(b.rotr(b.input(12, "a"), b.input(6, "amt")));
  rng r(555);
  expect_lowering_matches(g, r, 8);
}

TEST(LoweringTest, MulByZeroFoldsAway) {
  ir::graph g("mul0");
  ir::builder b(g);
  const ir::node_id x = b.input(8, "x");
  const ir::node_id zero = b.constant(8, 0);
  b.output(b.mul(x, zero));
  const lowering_result lowered = lower_graph(g);
  EXPECT_EQ(lowered.net.num_ands(), 0u);  // all partial products fold
}

TEST(LoweringTest, CompositeExpression) {
  // A realistic mixed expression exercising operand sharing.
  ir::graph g("mixed");
  ir::builder b(g);
  const ir::node_id x = b.input(16, "x");
  const ir::node_id y = b.input(16, "y");
  const ir::node_id s = b.add(x, y);
  const ir::node_id p = b.mul(b.slice(s, 0, 8), b.slice(y, 8, 8));
  const ir::node_id cmp = b.ult(x, y);
  b.output(b.mux(cmp, b.zext(p, 16), s));
  rng r(777);
  expect_lowering_matches(g, r, 6);
}

TEST(LoweringTest, AddWithCarryInViaSub) {
  // sub uses add_bits with carry-in 1; width-1 edge case.
  ir::graph g("sub1");
  ir::builder b(g);
  b.output(b.sub(b.input(1, "a"), b.input(1, "b")));
  rng r(888);
  expect_lowering_matches(g, r);
}

}  // namespace
}  // namespace isdc::lower
