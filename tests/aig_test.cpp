#include <gtest/gtest.h>

#include "aig/aig.h"
#include "aig/simulate.h"
#include "support/rng.h"
#include "test_util.h"

namespace isdc::aig {
namespace {

TEST(AigTest, ConstantFoldingRules) {
  aig g;
  const literal a = make_literal(g.add_pi());
  EXPECT_EQ(g.create_and(a, lit_false), lit_false);
  EXPECT_EQ(g.create_and(lit_false, a), lit_false);
  EXPECT_EQ(g.create_and(a, lit_true), a);
  EXPECT_EQ(g.create_and(lit_true, a), a);
  EXPECT_EQ(g.create_and(a, a), a);
  EXPECT_EQ(g.create_and(a, lit_not(a)), lit_false);
  EXPECT_EQ(g.num_ands(), 0u);
}

TEST(AigTest, StructuralHashingDeduplicates) {
  aig g;
  const literal a = make_literal(g.add_pi());
  const literal b = make_literal(g.add_pi());
  const literal x = g.create_and(a, b);
  const literal y = g.create_and(b, a);  // commuted
  EXPECT_EQ(x, y);
  EXPECT_EQ(g.num_ands(), 1u);
  const literal z = g.create_and(lit_not(a), b);  // different function
  EXPECT_NE(x, z);
  EXPECT_EQ(g.num_ands(), 2u);
}

TEST(AigTest, LevelsTrackDepth) {
  aig g;
  const literal a = make_literal(g.add_pi());
  const literal b = make_literal(g.add_pi());
  const literal c = make_literal(g.add_pi());
  const literal ab = g.create_and(a, b);
  const literal abc = g.create_and(ab, c);
  EXPECT_EQ(g.level(lit_node(a)), 0);
  EXPECT_EQ(g.level(lit_node(ab)), 1);
  EXPECT_EQ(g.level(lit_node(abc)), 2);
  g.add_po(abc);
  EXPECT_EQ(g.depth(), 2);
}

TEST(AigTest, XorMuxOrFunctions) {
  aig g;
  const literal a = make_literal(g.add_pi());
  const literal b = make_literal(g.add_pi());
  const literal s = make_literal(g.add_pi());
  g.add_po(g.create_xor(a, b));
  g.add_po(g.create_xnor(a, b));
  g.add_po(g.create_or(a, b));
  g.add_po(g.create_mux(s, a, b));
  // Exhaustive 8-minterm check via packed patterns.
  const std::vector<std::uint64_t> patterns = {0b10101010, 0b11001100,
                                               0b11110000};
  const auto out = simulate_outputs(g, patterns);
  for (int m = 0; m < 8; ++m) {
    const bool va = (m >> 0) & 1;
    const bool vb = (m >> 1) & 1;
    const bool vs = (m >> 2) & 1;
    EXPECT_EQ((out[0] >> m) & 1, static_cast<std::uint64_t>(va != vb));
    EXPECT_EQ((out[1] >> m) & 1, static_cast<std::uint64_t>(va == vb));
    EXPECT_EQ((out[2] >> m) & 1, static_cast<std::uint64_t>(va || vb));
    EXPECT_EQ((out[3] >> m) & 1, static_cast<std::uint64_t>(vs ? va : vb));
  }
}

TEST(AigTest, MuxIdenticalArmsCollapses) {
  aig g;
  const literal a = make_literal(g.add_pi());
  const literal s = make_literal(g.add_pi());
  EXPECT_EQ(g.create_mux(s, a, a), a);
}

TEST(AigTest, FanoutCounts) {
  aig g;
  const literal a = make_literal(g.add_pi());
  const literal b = make_literal(g.add_pi());
  const literal x = g.create_and(a, b);
  const literal y = g.create_and(x, lit_not(a));
  g.add_po(y);
  g.add_po(x);
  const auto refs = g.fanout_counts();
  EXPECT_EQ(refs[lit_node(a)], 2u);  // x and y
  EXPECT_EQ(refs[lit_node(x)], 2u);  // y and PO
  EXPECT_EQ(refs[lit_node(y)], 1u);  // PO
}

TEST(AigTest, CleanupDropsDanglingKeepsFunction) {
  rng r(5);
  aig g = isdc::testing::random_aig(r, 5, 40);
  // Add extra dangling logic.
  const literal d1 = g.create_and(make_literal(g.pis()[0]),
                                  make_literal(g.pis()[1]));
  (void)d1;
  const std::size_t before = g.num_ands();
  const aig cleaned = g.cleanup();
  EXPECT_LE(cleaned.num_ands(), before);
  EXPECT_EQ(cleaned.num_pis(), g.num_pis());
  rng r2(6);
  EXPECT_TRUE(isdc::testing::simulation_equivalent(g, cleaned, r2));
}

TEST(AigTest, CleanupTranslationMapsLiterals) {
  aig g;
  const literal a = make_literal(g.add_pi());
  const literal b = make_literal(g.add_pi());
  const literal x = g.create_and(a, lit_not(b));
  g.add_po(x);
  std::vector<literal> map;
  const aig cleaned = g.cleanup(&map);
  EXPECT_NE(map[lit_node(x)], aig::invalid_literal);
  EXPECT_EQ(cleaned.pos().size(), 1u);
}

TEST(AigTest, ComplementedPoSimulation) {
  aig g;
  const literal a = make_literal(g.add_pi());
  g.add_po(lit_not(a));
  const std::vector<std::uint64_t> patterns = {0xf0f0f0f0f0f0f0f0ull};
  const auto out = simulate_outputs(g, patterns);
  EXPECT_EQ(out[0], ~0xf0f0f0f0f0f0f0f0ull);
}

TEST(AigTest, ConstantPo) {
  aig g;
  g.add_pi();
  g.add_po(lit_true);
  g.add_po(lit_false);
  const std::vector<std::uint64_t> patterns = {42};
  const auto out = simulate_outputs(g, patterns);
  EXPECT_EQ(out[0], ~0ull);
  EXPECT_EQ(out[1], 0ull);
}

TEST(AigTest, RandomAigSimulationDeterministic) {
  rng r(77);
  const aig g = isdc::testing::random_aig(r, 6, 60);
  const std::vector<std::uint64_t> patterns(6, 0x123456789abcdef0ull);
  EXPECT_EQ(simulate_outputs(g, patterns), simulate_outputs(g, patterns));
}

}  // namespace
}  // namespace isdc::aig
