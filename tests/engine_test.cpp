#include <atomic>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "engine/engine.h"
#include "engine/stages.h"
#include "ir/builder.h"
#include "sched/metrics.h"

namespace isdc::engine {
namespace {

/// Thread-safe downstream stub that counts calls.
class counting_downstream final : public core::downstream_tool {
public:
  explicit counting_downstream(double delay, std::string name = "counting")
      : delay_(delay), name_(std::move(name)) {}
  double subgraph_delay_ps(const ir::graph&) const override {
    ++calls_;
    return delay_;
  }
  std::string name() const override { return name_; }
  int calls() const { return calls_.load(); }

private:
  double delay_;
  std::string name_;
  mutable std::atomic<int> calls_{0};
};

/// A chain of adders long enough to span several pipeline stages at the
/// default 2500 ps clock.
ir::graph make_add_chain(int length) {
  ir::graph g("addchain");
  ir::builder bl(g);
  ir::node_id v = bl.input(32, "x");
  const ir::node_id y = bl.input(32, "y");
  for (int i = 0; i < length; ++i) {
    v = bl.add(v, y);
  }
  g.mark_output(v);
  return g;
}

core::isdc_options chain_options() {
  core::isdc_options opts;
  opts.base.clock_period_ps = 2500.0;
  opts.max_iterations = 10;
  opts.subgraphs_per_iteration = 2;
  opts.num_threads = 2;
  opts.expansion = extract::expansion_mode::cone;
  return opts;
}

/// The shared characterization, amortized across the whole test binary.
const synth::delay_model& shared_model() {
  static const synth::delay_model model{synth::synthesis_options{}};
  return model;
}

void expect_same_result(const core::isdc_result& a,
                        const core::isdc_result& b) {
  EXPECT_EQ(a.initial, b.initial);
  EXPECT_EQ(a.final_schedule, b.final_schedule);
  EXPECT_EQ(a.iterations, b.iterations);
  EXPECT_EQ(a.delays, b.delays);
  EXPECT_EQ(a.naive_delays, b.naive_delays);
  ASSERT_EQ(a.history.size(), b.history.size());
  for (std::size_t i = 0; i < a.history.size(); ++i) {
    // cache_hits is intentionally excluded: it reports how the evaluations
    // were served, not what they computed.
    EXPECT_EQ(a.history[i].iteration, b.history[i].iteration);
    EXPECT_EQ(a.history[i].register_bits, b.history[i].register_bits);
    EXPECT_EQ(a.history[i].num_stages, b.history[i].num_stages);
    EXPECT_DOUBLE_EQ(a.history[i].estimated_delay_ps,
                     b.history[i].estimated_delay_ps);
    EXPECT_EQ(a.history[i].subgraphs_evaluated,
              b.history[i].subgraphs_evaluated);
    EXPECT_EQ(a.history[i].matrix_entries_lowered,
              b.history[i].matrix_entries_lowered);
  }
}

TEST(EvaluationCacheTest, LookupAndStore) {
  evaluation_cache cache;
  EXPECT_FALSE(cache.lookup(42).has_value());
  EXPECT_EQ(cache.stats().misses, 1u);

  cache.store(42, 123.0);
  const auto memo = cache.lookup(42);
  ASSERT_TRUE(memo.has_value());
  EXPECT_DOUBLE_EQ(*memo, 123.0);
  EXPECT_EQ(cache.stats().hits, 1u);
  EXPECT_EQ(cache.size(), 1u);
}

TEST(EvaluationCacheTest, KeysMixToolFingerprint) {
  // The same canonical fingerprint under two tools must map to two
  // entries, and two fingerprints under one tool likewise.
  EXPECT_NE(subgraph_cache_key(1, 7), subgraph_cache_key(2, 7));
  EXPECT_NE(subgraph_cache_key(1, 7), subgraph_cache_key(1, 8));
  // The combine is order-dependent: tool and subgraph are distinct roles.
  EXPECT_NE(subgraph_cache_key(1, 7), subgraph_cache_key(7, 1));
}

TEST(EngineTest, DefaultPipelineIsTheSixPaperStages) {
  const auto pipeline = engine::default_pipeline();
  ASSERT_EQ(pipeline.size(), 6u);
  const char* expected[] = {"enumerate", "rank",   "expand",
                            "evaluate",  "update", "resolve"};
  for (std::size_t i = 0; i < pipeline.size(); ++i) {
    EXPECT_EQ(pipeline[i]->name(), expected[i]) << "stage " << i;
  }
}

TEST(EngineTest, RunMatchesRunIsdc) {
  const ir::graph g = make_add_chain(5);
  const core::isdc_options opts = chain_options();
  counting_downstream tool_a(900.0);
  counting_downstream tool_b(900.0);

  const core::isdc_result via_wrapper =
      core::run_isdc(g, tool_a, opts, &shared_model());
  engine e;
  const core::isdc_result via_engine =
      e.run(g, tool_b, opts, &shared_model());

  expect_same_result(via_wrapper, via_engine);
  EXPECT_EQ(tool_a.calls(), tool_b.calls());
}

/// A composable gate: passes iterations through until a budget is hit,
/// then ends the run — exercising custom stages in the pipeline.
class halt_after_stage final : public stage {
public:
  explicit halt_after_stage(int budget) : budget_(budget) {}
  std::string_view name() const override { return "halt-after"; }
  bool run(run_state&, iteration_state& it) override {
    return it.iteration <= budget_;
  }

private:
  int budget_;
};

/// Counts completed pipeline passes (runs as the last stage).
class tally_stage final : public stage {
public:
  std::string_view name() const override { return "tally"; }
  bool run(run_state&, iteration_state&) override {
    ++passes;
    return true;
  }
  int passes = 0;
};

TEST(EngineTest, PipelineComposesCustomStages) {
  const ir::graph g = make_add_chain(5);
  core::isdc_options opts = chain_options();
  opts.convergence_patience = 10;

  auto pipeline = engine::default_pipeline();
  pipeline.insert(pipeline.begin(), std::make_unique<halt_after_stage>(2));
  auto tally = std::make_unique<tally_stage>();
  tally_stage* tally_ptr = tally.get();
  pipeline.push_back(std::move(tally));

  engine e(std::move(pipeline));
  ASSERT_EQ(e.pipeline().size(), 8u);
  counting_downstream tool(900.0);
  const core::isdc_result result = e.run(g, tool, opts, &shared_model());

  // The gate ends the run at iteration 3, so exactly two full passes
  // completed and the tally stage saw each of them.
  EXPECT_EQ(result.iterations, 2);
  EXPECT_EQ(result.history.size(), 3u);
  EXPECT_EQ(tally_ptr->passes, 2);
}

TEST(EngineTest, ConvergencePatienceBoundsStableRuns) {
  const ir::graph g = make_add_chain(5);
  // Feedback that never beats the characterized estimate: the schedule
  // cannot improve, so every iteration is "stable" and patience is the
  // only thing that stops the run (long before max_iterations).
  core::isdc_options opts = chain_options();
  opts.subgraphs_per_iteration = 1;

  opts.convergence_patience = 1;
  counting_downstream slow_a(50000.0);
  const core::isdc_result impatient =
      engine().run(g, slow_a, opts, &shared_model());
  EXPECT_EQ(impatient.iterations, 1);

  opts.convergence_patience = 3;
  counting_downstream slow_b(50000.0);
  const core::isdc_result patient =
      engine().run(g, slow_b, opts, &shared_model());
  EXPECT_GE(patient.iterations, impatient.iterations);
  EXPECT_LE(patient.iterations, 3);
  EXPECT_LT(patient.iterations, opts.max_iterations);
}

TEST(EngineTest, SearchSpaceExhaustionEndsTheRun) {
  const ir::graph g = make_add_chain(5);
  core::isdc_options opts = chain_options();
  opts.subgraphs_per_iteration = 64;  // swallow every cone in one round
  opts.convergence_patience = 10;     // patience must not be what stops us
  counting_downstream slow(50000.0);  // never improves -> same cones again

  const core::isdc_result result = engine().run(g, slow, opts, &shared_model());

  // Iteration 1 evaluates every cone; iteration 2 finds nothing new and
  // the expansion stage ends the run.
  EXPECT_EQ(result.iterations, 1);
  ASSERT_EQ(result.history.size(), 2u);
  EXPECT_GT(result.history[1].subgraphs_evaluated, 0);
  EXPECT_EQ(slow.calls(), result.history[1].subgraphs_evaluated);
}

TEST(EngineTest, EvaluationCachePersistsAcrossRuns) {
  const ir::graph g = make_add_chain(5);
  const core::isdc_options opts = chain_options();
  counting_downstream tool(900.0);

  engine e;
  const core::isdc_result first = e.run(g, tool, opts, &shared_model());
  const int downstream_calls = tool.calls();
  EXPECT_GT(downstream_calls, 0);
  EXPECT_EQ(e.cache().stats().hits, 0u);
  EXPECT_EQ(e.cache().stats().misses,
            static_cast<std::uint64_t>(downstream_calls));
  int first_hits = 0;
  for (const auto& rec : first.history) {
    first_hits += rec.cache_hits;
  }
  EXPECT_EQ(first_hits, 0);

  // Same design, same options: the second run selects the same subgraphs
  // and every evaluation is served from the cache — the downstream tool is
  // never called again and the result is identical.
  const core::isdc_result second = e.run(g, tool, opts, &shared_model());
  EXPECT_EQ(tool.calls(), downstream_calls);
  EXPECT_EQ(e.cache().stats().hits,
            static_cast<std::uint64_t>(downstream_calls));
  int second_hits = 0;
  for (const auto& rec : second.history) {
    second_hits += rec.cache_hits;
  }
  EXPECT_EQ(second_hits, downstream_calls);
  expect_same_result(first, second);
}

TEST(EngineTest, DifferentDownstreamToolsDoNotShareCacheEntries) {
  // Cache keys scope to the tool identity: a delay measured by one oracle
  // must never answer for another.
  const ir::graph g = make_add_chain(5);
  const core::isdc_options opts = chain_options();
  engine e;
  counting_downstream fast(900.0, "fast-oracle");
  counting_downstream slow(1800.0, "slow-oracle");

  e.run(g, fast, opts, &shared_model());
  const int fast_calls = fast.calls();
  EXPECT_GT(fast_calls, 0);

  e.run(g, slow, opts, &shared_model());
  EXPECT_GT(slow.calls(), 0);  // consulted, not served fast-oracle memos
  EXPECT_EQ(e.cache().stats().hits, 0u);
  EXPECT_EQ(fast.calls(), fast_calls);
}

/// Collects the streamed records.
class collecting_observer final : public iteration_observer {
public:
  void on_run_begin(const ir::graph&, const core::isdc_options&) override {
    ++begins;
  }
  void on_iteration(const core::iteration_record& rec) override {
    records.push_back(rec);
  }
  void on_run_end(const core::isdc_result&) override { ++ends; }

  int begins = 0;
  int ends = 0;
  std::vector<core::iteration_record> records;
};

TEST(EngineTest, WarmResolveEngagesAfterBaseline) {
  const ir::graph g = make_add_chain(8);
  core::isdc_options opts = chain_options();
  counting_downstream tool(900.0);

  engine e;
  const core::isdc_result result = e.run(g, tool, opts, &shared_model());

  // The baseline is always a cold solve; every later iteration must reuse
  // the warm solver state, so cold solves < iterations + 1.
  ASSERT_GE(result.history.size(), 2u);
  EXPECT_FALSE(result.history[0].warm_resolve);
  std::size_t cold = 0;
  for (const core::iteration_record& rec : result.history) {
    cold += rec.warm_resolve ? 0 : 1;
  }
  EXPECT_EQ(cold, 1u);
  // Feedback lowered entries, so at least one re-solve re-emitted timing
  // constraints, and the observers see the same counters via the record.
  std::size_t reemitted = 0;
  for (const core::iteration_record& rec : result.history) {
    reemitted += rec.constraints_reemitted;
  }
  EXPECT_GT(reemitted, 0u);
}

TEST(EngineTest, ObserversStreamTheHistory) {
  const ir::graph g = make_add_chain(5);
  const core::isdc_options opts = chain_options();
  counting_downstream tool(900.0);

  engine e;
  collecting_observer obs;
  callback_observer cb([](const core::iteration_record&) {});
  e.add_observer(&obs);
  e.add_observer(&cb);
  const core::isdc_result result = e.run(g, tool, opts, &shared_model());

  EXPECT_EQ(obs.begins, 1);
  EXPECT_EQ(obs.ends, 1);
  ASSERT_EQ(obs.records.size(), result.history.size());
  for (std::size_t i = 0; i < obs.records.size(); ++i) {
    EXPECT_EQ(obs.records[i].iteration, result.history[i].iteration);
    EXPECT_EQ(obs.records[i].register_bits, result.history[i].register_bits);
  }
}

}  // namespace
}  // namespace isdc::engine
