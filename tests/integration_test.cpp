// End-to-end ISDC runs on real (small) benchmarks through the full
// substrate: characterization, SDC baseline, iterative feedback with the
// synthesis downstream, validation of every produced schedule, and the
// paper's headline direction (register usage must not regress, and for the
// known-slack-rich designs must strictly improve).
#include <gtest/gtest.h>

#include "core/isdc_scheduler.h"
#include "sched/metrics.h"
#include "sched/validate.h"
#include "workloads/registry.h"

namespace isdc {
namespace {

struct integration_case {
  const char* workload;
  bool expect_strict_improvement;
};

class IsdcIntegrationTest
    : public ::testing::TestWithParam<integration_case> {
protected:
  static synth::delay_model& shared_model() {
    static synth::delay_model model;  // shared characterization cache
    return model;
  }
};

TEST_P(IsdcIntegrationTest, FullFlow) {
  const integration_case& c = GetParam();
  const workloads::workload_spec* spec = workloads::find_workload(c.workload);
  ASSERT_NE(spec, nullptr);
  const ir::graph g = spec->build();

  core::isdc_options opts;
  opts.base.clock_period_ps = spec->clock_period_ps;
  opts.max_iterations = 8;
  opts.subgraphs_per_iteration = 8;
  opts.num_threads = 2;
  core::synthesis_downstream tool(opts.synth);

  const core::isdc_result result =
      core::run_isdc(g, tool, opts, &shared_model());

  const std::int64_t initial_bits = sched::register_bits(g, result.initial);
  const std::int64_t final_bits =
      sched::register_bits(g, result.final_schedule);

  // Direction of the paper's headline result.
  EXPECT_LE(final_bits, initial_bits) << spec->name;
  if (c.expect_strict_improvement) {
    EXPECT_LT(final_bits, initial_bits) << spec->name;
  }
  // Stage count must not regress either (Table I shows it shrinking).
  EXPECT_LE(result.final_schedule.num_stages(), result.initial.num_stages());

  // Every schedule must be legal: the baseline under the naive matrix, the
  // final one under the feedback-updated matrix.
  EXPECT_TRUE(sched::validate_schedule(g, result.initial,
                                       result.naive_delays,
                                       spec->clock_period_ps)
                  .empty());
  EXPECT_TRUE(sched::validate_schedule(g, result.final_schedule,
                                       result.delays, spec->clock_period_ps)
                  .empty());

  // History bookkeeping: entry 0 is the baseline; register bits of the
  // best iterate equal final_bits.
  ASSERT_FALSE(result.history.empty());
  EXPECT_EQ(result.history.front().register_bits, initial_bits);
  std::int64_t best = initial_bits;
  for (const auto& rec : result.history) {
    best = std::min(best, rec.register_bits);
  }
  EXPECT_EQ(best, final_bits);

  // Determinism: a second run gives the identical trajectory.
  const core::isdc_result again =
      core::run_isdc(g, tool, opts, &shared_model());
  EXPECT_EQ(again.final_schedule, result.final_schedule);
  ASSERT_EQ(again.history.size(), result.history.size());
  for (std::size_t i = 0; i < result.history.size(); ++i) {
    EXPECT_EQ(again.history[i].register_bits,
              result.history[i].register_bits);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Workloads, IsdcIntegrationTest,
    ::testing::Values(integration_case{"rrot", true},
                      integration_case{"ml_datapath1", false},
                      integration_case{"binary_divide", false},
                      integration_case{"crc32", true}),
    [](const auto& info) { return std::string(info.param.workload); });

TEST(IsdcIntegrationTest2, PostSynthesisTimingHolds) {
  // The final schedule's *synthesized* stage delays should respect the
  // clock: the feedback loop must not produce schedules that only look
  // legal under its own estimates. Small tolerance for estimation error on
  // merged stages never evaluated as one subgraph.
  const workloads::workload_spec* spec = workloads::find_workload("rrot");
  ASSERT_NE(spec, nullptr);
  const ir::graph g = spec->build();
  core::isdc_options opts;
  opts.base.clock_period_ps = spec->clock_period_ps;
  opts.max_iterations = 6;
  opts.subgraphs_per_iteration = 8;
  opts.num_threads = 2;
  core::synthesis_downstream tool(opts.synth);
  const core::isdc_result result = core::run_isdc(g, tool, opts);
  const double actual =
      sched::synthesized_critical_delay(g, result.final_schedule, opts.synth);
  EXPECT_LE(actual, spec->clock_period_ps * 1.05);
}

TEST(IsdcIntegrationTest2, AigDepthDownstreamAlsoImproves) {
  // The Section V-3 feedback variant must drive the same loop.
  const workloads::workload_spec* spec = workloads::find_workload("rrot");
  const ir::graph g = spec->build();
  core::isdc_options opts;
  opts.base.clock_period_ps = spec->clock_period_ps;
  opts.max_iterations = 6;
  opts.subgraphs_per_iteration = 8;
  opts.num_threads = 2;
  core::aig_depth_downstream tool(80.0);
  const core::isdc_result result = core::run_isdc(g, tool, opts);
  EXPECT_LE(sched::register_bits(g, result.final_schedule),
            sched::register_bits(g, result.initial));
}

}  // namespace
}  // namespace isdc
