// The invariant-validation layer: sched::validate_matrix /
// validate_matrix_monotonic on real and deliberately corrupted matrices,
// and engine::invariant_validator watching real runs through the observer
// API. Runs under TSan in CI alongside the engine suites.
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/downstream.h"
#include "core/isdc_scheduler.h"
#include "engine/engine.h"
#include "engine/validator.h"
#include "sched/validate.h"
#include "workloads/registry.h"

namespace isdc {
namespace {

core::isdc_options small_options() {
  core::isdc_options opts;
  opts.max_iterations = 2;
  opts.subgraphs_per_iteration = 4;
  opts.num_threads = 2;
  return opts;
}

/// A real (graph, naive matrix) pair from the classic SDC path.
struct baseline_fixture {
  ir::graph g;
  sched::schedule s;
  sched::delay_matrix d{0};

  explicit baseline_fixture(std::uint64_t seed, int ops = 60)
      : g(workloads::build_random_dag(seed, ops)) {
    s = core::run_sdc_baseline(g, small_options(), nullptr, &d);
  }
};

TEST(ValidateMatrixTest, RealBaselineMatrixIsConsistent) {
  baseline_fixture fx(1);
  EXPECT_EQ(sched::validate_matrix(fx.g, fx.d), std::vector<std::string>{});
}

TEST(ValidateMatrixTest, SizeMismatchIsReported) {
  baseline_fixture fx(2);
  sched::delay_matrix wrong(fx.g.num_nodes() + 1);
  const auto violations = sched::validate_matrix(fx.g, wrong);
  ASSERT_EQ(violations.size(), 1u);
  EXPECT_NE(violations[0].find("matrix is"), std::string::npos);
}

TEST(ValidateMatrixTest, NegativeSelfDelayIsReported) {
  baseline_fixture fx(3);
  fx.d.set(4, 4, -2.0f);
  EXPECT_FALSE(sched::validate_matrix(fx.g, fx.d).empty());
}

TEST(ValidateMatrixTest, BelowDiagonalEntryIsReported) {
  baseline_fixture fx(4);
  fx.d.set(9, 3, 100.0f);
  const auto violations = sched::validate_matrix(fx.g, fx.d);
  ASSERT_FALSE(violations.empty());
  EXPECT_NE(violations[0].find("diagonal"), std::string::npos);
}

TEST(ValidateMatrixTest, ConnectivityMismatchesAreReportedBothWays) {
  baseline_fixture fx(5);
  // Disconnect a genuinely connected pair: a node and one of its users.
  ir::node_id u = 0, v = 0;
  bool found = false;
  for (ir::node_id n = 0; n < static_cast<ir::node_id>(fx.g.num_nodes());
       ++n) {
    if (!fx.g.users(n).empty()) {
      u = n;
      v = fx.g.users(n)[0];
      found = true;
      break;
    }
  }
  ASSERT_TRUE(found);
  sched::delay_matrix cut = fx.d;
  cut.set(u, v, sched::delay_matrix::not_connected);
  EXPECT_FALSE(sched::validate_matrix(fx.g, cut).empty());

  // Connect an unreachable pair: two distinct primary inputs.
  ASSERT_GE(fx.g.inputs().size(), 2u);
  sched::delay_matrix joined = fx.d;
  joined.set(fx.g.inputs()[0], fx.g.inputs()[1], 50.0f);
  EXPECT_FALSE(sched::validate_matrix(fx.g, joined).empty());
}

TEST(ValidateMatrixTest, ReportingStopsAtTheViolationCap) {
  baseline_fixture fx(6, 120);
  sched::delay_matrix zeroed(fx.g.num_nodes());  // everything disconnected
  const auto violations = sched::validate_matrix(fx.g, zeroed, 5);
  // 5 real violations plus the suppression marker.
  ASSERT_EQ(violations.size(), 6u);
  EXPECT_NE(violations.back().find("suppressed"), std::string::npos);
}

TEST(ValidateMonotonicTest, LoweredEntriesPass) {
  baseline_fixture fx(7);
  sched::delay_matrix after = fx.d;
  for (ir::node_id u = 0; u < static_cast<ir::node_id>(after.size()); ++u) {
    for (ir::node_id v = u + 1; v < static_cast<ir::node_id>(after.size());
         ++v) {
      if (after.connected(u, v)) {
        after.set(u, v, after.get(u, v) * 0.9f);
      }
    }
  }
  EXPECT_EQ(sched::validate_matrix_monotonic(fx.d, after),
            std::vector<std::string>{});
}

TEST(ValidateMonotonicTest, RaisedEntryAndConnectivityFlipAreReported) {
  baseline_fixture fx(8);
  ir::node_id u = 0, v = 0;
  bool found = false;
  for (ir::node_id n = 0; n < static_cast<ir::node_id>(fx.g.num_nodes());
       ++n) {
    if (!fx.g.users(n).empty()) {
      u = n;
      v = fx.g.users(n)[0];
      found = true;
      break;
    }
  }
  ASSERT_TRUE(found);

  sched::delay_matrix raised = fx.d;
  raised.set(u, v, raised.get(u, v) + 10.0f);
  EXPECT_FALSE(sched::validate_matrix_monotonic(fx.d, raised).empty());

  sched::delay_matrix flipped = fx.d;
  flipped.set(u, v, sched::delay_matrix::not_connected);
  const auto violations = sched::validate_matrix_monotonic(fx.d, flipped);
  ASSERT_FALSE(violations.empty());
  EXPECT_NE(violations[0].find("connect"), std::string::npos);
}

TEST(ValidateMonotonicTest, EpsilonToleratesFloatNoise) {
  baseline_fixture fx(9);
  sched::delay_matrix after = fx.d;
  after.set(fx.g.inputs()[0], fx.g.inputs()[0],
            after.self(fx.g.inputs()[0]) + 1e-4f);
  EXPECT_EQ(sched::validate_matrix_monotonic(fx.d, after, 1e-3),
            std::vector<std::string>{});
  EXPECT_FALSE(sched::validate_matrix_monotonic(fx.d, after, 1e-6).empty());
}

// --- the observer-attached validator over real runs ---

TEST(InvariantValidatorTest, CleanRunHasNoViolations) {
  const ir::graph g = workloads::build_random_dag(10, 80);
  core::aig_depth_downstream tool;
  engine::engine e;
  engine::invariant_validator validator;
  e.add_observer(&validator);
  const core::isdc_result r = e.run(g, tool, small_options());
  e.remove_observer(&validator);
  EXPECT_TRUE(validator.ok()) << validator.to_string();
  // Baseline + one iterate per feedback iteration.
  EXPECT_EQ(validator.schedules_checked(), 1 + r.iterations);
  EXPECT_EQ(validator.to_string(), "");
}

TEST(InvariantValidatorTest, CleanMixedControlRunHasNoViolations) {
  const ir::graph g = workloads::build_mixed_dag(11, 90);
  core::aig_depth_downstream tool;
  engine::engine e;
  engine::invariant_validator validator;
  e.add_observer(&validator);
  e.run(g, tool, small_options());
  e.remove_observer(&validator);
  EXPECT_TRUE(validator.ok()) << validator.to_string();
}

TEST(InvariantValidatorTest, ResetClearsStateBetweenRuns) {
  const ir::graph g = workloads::build_random_dag(12, 50);
  core::aig_depth_downstream tool;
  engine::engine e;
  engine::invariant_validator validator;
  e.add_observer(&validator);
  e.run(g, tool, small_options());
  const int first = validator.schedules_checked();
  EXPECT_GT(first, 0);
  validator.reset();
  EXPECT_EQ(validator.schedules_checked(), 0);
  e.run(g, tool, small_options());
  e.remove_observer(&validator);
  EXPECT_EQ(validator.schedules_checked(), first);
  EXPECT_TRUE(validator.ok()) << validator.to_string();
}

TEST(InvariantValidatorTest, AsyncRunValidatesClean) {
  const ir::graph g = workloads::build_mixed_dag(13, 70);
  core::aig_depth_downstream tool;
  core::isdc_options opts = small_options();
  opts.async_evaluation = true;
  engine::engine e;
  engine::invariant_validator validator;
  e.add_observer(&validator);
  e.run(g, tool, opts);
  e.remove_observer(&validator);
  EXPECT_TRUE(validator.ok()) << validator.to_string();
}

}  // namespace
}  // namespace isdc
