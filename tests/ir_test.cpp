#include <cstdint>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "ir/arena.h"
#include "ir/builder.h"
#include "ir/dot.h"
#include "ir/evaluate.h"
#include "ir/extract.h"
#include "ir/graph.h"
#include "ir/verify.h"
#include "support/check.h"
#include "support/rng.h"
#include "test_util.h"

namespace isdc::ir {
namespace {

TEST(GraphTest, AddNodeMaintainsUsersAndInputs) {
  graph g;
  builder b(g);
  const node_id x = b.input(8, "x");
  const node_id y = b.input(8, "y");
  const node_id sum = b.add(x, y);
  b.output(sum);
  EXPECT_EQ(g.num_nodes(), 3u);
  EXPECT_EQ(g.inputs().size(), 2u);
  EXPECT_EQ(g.users(x).size(), 1u);
  EXPECT_EQ(g.users(x)[0], sum);
  EXPECT_TRUE(g.is_output(sum));
  EXPECT_FALSE(g.is_output(x));
}

TEST(GraphTest, OperandMustPrecede) {
  graph g;
  builder b(g);
  const node_id x = b.input(8, "x");
  EXPECT_THROW(g.add_node(opcode::add, 8, {x, 5}), check_error);
}

TEST(GraphTest, WidthBounds) {
  graph g;
  EXPECT_THROW(g.add_node(opcode::input, 0, {}), check_error);
  EXPECT_THROW(g.add_node(opcode::input, 65, {}), check_error);
  EXPECT_NO_THROW(g.add_node(opcode::input, 64, {}));
}

TEST(GraphTest, IsConnected) {
  graph g;
  builder b(g);
  const node_id x = b.input(8, "x");
  const node_id y = b.input(8, "y");
  const node_id s1 = b.add(x, y);
  const node_id s2 = b.add(s1, y);
  const node_id lone = b.input(8, "z");
  b.output(s2);
  EXPECT_TRUE(g.is_connected(x, s2));
  EXPECT_TRUE(g.is_connected(s1, s2));
  EXPECT_TRUE(g.is_connected(x, x));
  EXPECT_FALSE(g.is_connected(s2, x));
  EXPECT_FALSE(g.is_connected(lone, s2));
}

TEST(GraphTest, TotalOutputBits) {
  graph g;
  builder b(g);
  const node_id x = b.input(8, "x");
  b.output(b.add(x, x));
  b.output(b.bnot(x));
  EXPECT_EQ(g.total_output_bits(), 16u);
}

TEST(GraphTest, DuplicateOutputIgnored) {
  graph g;
  builder b(g);
  const node_id x = b.input(4, "x");
  g.mark_output(x);
  g.mark_output(x);
  EXPECT_EQ(g.outputs().size(), 1u);
}

// --- evaluation semantics, one test per opcode ---

struct eval_case {
  const char* name;
  std::function<node_id(builder&, node_id, node_id)> make;
  std::uint64_t a, b, expected;
  std::uint32_t width;
};

class EvaluateTest : public ::testing::TestWithParam<eval_case> {};

TEST_P(EvaluateTest, BinaryOpSemantics) {
  const eval_case& c = GetParam();
  graph g;
  builder b(g);
  const node_id x = b.input(c.width, "x");
  const node_id y = b.input(c.width, "y");
  b.output(c.make(b, x, y));
  const auto out = evaluate(g, std::vector<std::uint64_t>{c.a, c.b});
  EXPECT_EQ(out[0], c.expected) << c.name;
}

INSTANTIATE_TEST_SUITE_P(
    Ops, EvaluateTest,
    ::testing::Values(
        eval_case{"add_wrap",
                  [](builder& b, node_id x, node_id y) { return b.add(x, y); },
                  0xff, 0x01, 0x00, 8},
        eval_case{"sub_wrap",
                  [](builder& b, node_id x, node_id y) { return b.sub(x, y); },
                  0x00, 0x01, 0xff, 8},
        eval_case{"mul_low",
                  [](builder& b, node_id x, node_id y) { return b.mul(x, y); },
                  0x10, 0x10, 0x00, 8},
        eval_case{"and",
                  [](builder& b, node_id x, node_id y) { return b.band(x, y); },
                  0b1100, 0b1010, 0b1000, 4},
        eval_case{"or",
                  [](builder& b, node_id x, node_id y) { return b.bor(x, y); },
                  0b1100, 0b1010, 0b1110, 4},
        eval_case{"xor",
                  [](builder& b, node_id x, node_id y) { return b.bxor(x, y); },
                  0b1100, 0b1010, 0b0110, 4},
        eval_case{"eq_true",
                  [](builder& b, node_id x, node_id y) { return b.eq(x, y); },
                  7, 7, 1, 8},
        eval_case{"ne_true",
                  [](builder& b, node_id x, node_id y) { return b.ne(x, y); },
                  7, 8, 1, 8},
        eval_case{"ult",
                  [](builder& b, node_id x, node_id y) { return b.ult(x, y); },
                  3, 9, 1, 8},
        eval_case{"ule_eq",
                  [](builder& b, node_id x, node_id y) { return b.ule(x, y); },
                  9, 9, 1, 8},
        eval_case{"shl_var",
                  [](builder& b, node_id x, node_id y) { return b.shl(x, y); },
                  0b0011, 2, 0b1100, 4},
        eval_case{"shl_overflow",
                  [](builder& b, node_id x, node_id y) { return b.shl(x, y); },
                  0b0011, 9, 0, 4},
        eval_case{"shr_var",
                  [](builder& b, node_id x, node_id y) { return b.shr(x, y); },
                  0b1100, 2, 0b0011, 4},
        eval_case{"rotl_mod",
                  [](builder& b, node_id x, node_id y) { return b.rotl(x, y); },
                  0b0001, 5, 0b0010, 4},
        eval_case{"rotr",
                  [](builder& b, node_id x, node_id y) { return b.rotr(x, y); },
                  0b0001, 1, 0b1000, 4}));

TEST(EvaluateUnaryTest, NegNotSextZextSliceConcatMuxRot) {
  graph g;
  builder b(g);
  const node_id x = b.input(8, "x");
  const node_id y = b.input(8, "y");
  const node_id sel = b.input(1, "sel");
  b.output(b.neg(x));                 // 0
  b.output(b.bnot(x));                // 1
  b.output(b.sext(b.slice(x, 4, 4), 8));  // 2: sign-extend high nibble
  b.output(b.zext(b.slice(x, 0, 4), 8));  // 3
  b.output(b.concat(x, y));           // 4: 16 bits {x, y}
  b.output(b.mux(sel, x, y));         // 5
  b.output(b.rotri(x, 3));            // 6
  b.output(b.rotli(x, 3));            // 7
  b.output(b.shri(x, 7));             // 8
  const auto out =
      evaluate(g, std::vector<std::uint64_t>{0x9c, 0x33, 1});
  EXPECT_EQ(out[0], (0x100 - 0x9c) & 0xffu);
  EXPECT_EQ(out[1], static_cast<std::uint64_t>(~0x9c & 0xff));
  EXPECT_EQ(out[2], 0xf9u);  // high nibble 0x9 sign-extends
  EXPECT_EQ(out[3], 0x0cu);
  EXPECT_EQ(out[4], 0x9c33u);
  EXPECT_EQ(out[5], 0x9cu);
  EXPECT_EQ(out[6], ((0x9cu >> 3) | (0x9cu << 5)) & 0xffu);
  EXPECT_EQ(out[7], ((0x9cu << 3) | (0x9cu >> 5)) & 0xffu);
  EXPECT_EQ(out[8], 0x9cu >> 7);
}

TEST(EvaluateTest64Bit, FullWidthMasking) {
  graph g;
  builder b(g);
  const node_id x = b.input(64, "x");
  b.output(b.add(x, x));
  const auto out = evaluate(g, std::vector<std::uint64_t>{~0ull});
  EXPECT_EQ(out[0], ~0ull - 1);
}

// --- verify ---

TEST(VerifyTest, AcceptsWellFormed) {
  graph g;
  builder b(g);
  b.output(b.add(b.input(8, "x"), b.input(8, "y")));
  EXPECT_EQ(verify(g), "");
  EXPECT_NO_THROW(verify_or_throw(g));
}

TEST(VerifyTest, RejectsNoOutputs) {
  graph g;
  builder b(g);
  b.input(8, "x");
  EXPECT_NE(verify(g), "");
}

TEST(VerifyTest, RejectsWidthMismatch) {
  graph g;
  const node_id x = g.add_node(opcode::input, 8, {});
  const node_id y = g.add_node(opcode::input, 4, {});
  const node_id s = g.add_node(opcode::add, 8, {x, y});
  g.mark_output(s);
  EXPECT_NE(verify(g), "");
}

TEST(VerifyTest, RejectsBadSlice) {
  graph g;
  const node_id x = g.add_node(opcode::input, 8, {});
  const node_id s = g.add_node(opcode::slice, 4, {x}, 6);  // [9:6] of 8 bits
  g.mark_output(s);
  EXPECT_NE(verify(g), "");
}

TEST(VerifyTest, RejectsNonOneBitComparison) {
  graph g;
  const node_id x = g.add_node(opcode::input, 8, {});
  const node_id y = g.add_node(opcode::input, 8, {});
  const node_id e = g.add_node(opcode::eq, 2, {x, y});
  g.mark_output(e);
  EXPECT_NE(verify(g), "");
}

TEST(VerifyTest, RejectsDegenerateExtension) {
  graph g;
  const node_id x = g.add_node(opcode::input, 8, {});
  const node_id z = g.add_node(opcode::zext, 8, {x});
  g.mark_output(z);
  EXPECT_NE(verify(g), "");
}

// --- subgraph extraction ---

TEST(ExtractTest, BoundaryInputsAreDeduplicated) {
  graph g;
  builder b(g);
  const node_id x = b.input(8, "x");
  const node_id y = b.input(8, "y");
  const node_id pre = b.add(x, y);    // external
  const node_id m1 = b.add(pre, pre); // member, uses pre twice... one operand
  const node_id m2 = b.bxor(m1, pre); // member, uses pre again
  b.output(m2);

  const std::vector<node_id> members = {m1, m2};
  const std::vector<node_id> roots = {m2};
  const extraction ex = extract_subgraph(g, members, roots);
  EXPECT_EQ(ex.boundary.size(), 1u);  // `pre` appears once
  EXPECT_EQ(ex.boundary[0], pre);
  EXPECT_EQ(ex.g.outputs().size(), 1u);
  EXPECT_EQ(verify(ex.g), "");
}

TEST(ExtractTest, ConstantsAreClonedNotInputs) {
  graph g;
  builder b(g);
  const node_id x = b.input(8, "x");
  const node_id k = b.constant(8, 42);
  const node_id m = b.add(x, k);
  b.output(m);
  const std::vector<node_id> members = {m};
  const std::vector<node_id> roots = {m};
  const extraction ex = extract_subgraph(g, members, roots);
  EXPECT_EQ(ex.boundary.size(), 1u);  // only x
  // The subgraph has one input and one constant.
  EXPECT_EQ(ex.g.inputs().size(), 1u);
  bool has_constant = false;
  for (const node& n : ex.g.nodes()) {
    has_constant = has_constant || n.op == opcode::constant;
  }
  EXPECT_TRUE(has_constant);
}

TEST(ExtractTest, SubgraphComputesSameFunction) {
  rng r(31);
  for (int trial = 0; trial < 10; ++trial) {
    const graph g = isdc::testing::random_graph(r, 3, 20, 8);
    // Extract the fan-in cone of the last output.
    const node_id root = g.outputs().back();
    std::vector<node_id> members;
    std::vector<node_id> stack{root};
    std::vector<bool> seen(g.num_nodes(), false);
    seen[root] = true;
    while (!stack.empty()) {
      const node_id w = stack.back();
      stack.pop_back();
      if (g.at(w).op == opcode::input) {
        continue;
      }
      members.push_back(w);
      for (node_id p : g.at(w).operands) {
        if (!seen[p]) {
          seen[p] = true;
          stack.push_back(p);
        }
      }
    }
    if (members.empty()) {
      continue;
    }
    const std::vector<node_id> roots = {root};
    const extraction ex = extract_subgraph(g, members, roots);
    ASSERT_EQ(verify(ex.g), "");

    // Bind boundary values from a full evaluation of the original graph.
    const auto inputs = isdc::testing::random_inputs(g, r);
    const auto all_values = evaluate_all(g, inputs);
    std::vector<std::uint64_t> sub_inputs;
    for (node_id orig : ex.boundary) {
      sub_inputs.push_back(all_values[orig]);
    }
    const auto sub_out = evaluate(ex.g, sub_inputs);
    ASSERT_EQ(sub_out.size(), 1u);
    EXPECT_EQ(sub_out[0], all_values[root]) << "trial " << trial;
  }
}

TEST(ExtractTest, RootMustBeMember) {
  graph g;
  builder b(g);
  const node_id x = b.input(8, "x");
  const node_id m = b.bnot(x);
  const node_id other = b.neg(x);
  b.output(m);
  b.output(other);
  const std::vector<node_id> members = {m};
  const std::vector<node_id> roots = {other};
  EXPECT_THROW(extract_subgraph(g, members, roots), check_error);
}

// --- dot ---

TEST(DotTest, EmitsClustersWhenStaged) {
  graph g;
  builder b(g);
  const node_id x = b.input(8, "x");
  b.output(b.add(x, x));
  std::ostringstream os;
  const std::vector<int> stages = {0, 1};
  write_dot(os, g, stages);
  EXPECT_NE(os.str().find("cluster_stage0"), std::string::npos);
  EXPECT_NE(os.str().find("cluster_stage1"), std::string::npos);
  EXPECT_NE(os.str().find("->"), std::string::npos);
}

// --- arena ---

TEST(ArenaTest, InternBasics) {
  id_arena arena;
  EXPECT_EQ(arena.size(), 0u);
  EXPECT_EQ(arena.intern(nullptr, 0), nullptr);  // empty spans are free
  EXPECT_EQ(arena.size(), 0u);

  const node_id ops[] = {1, 2, 3};
  const node_id* span = arena.intern(ops, 3);
  ASSERT_NE(span, nullptr);
  EXPECT_NE(span, ops);  // a copy, not the caller's storage
  EXPECT_EQ(span[0], 1u);
  EXPECT_EQ(span[1], 2u);
  EXPECT_EQ(span[2], 3u);
  EXPECT_EQ(arena.size(), 3u);
  EXPECT_GT(arena.capacity_bytes(), 0u);
}

TEST(ArenaTest, ChunkGrowthKeepsEarlierSpansStable) {
  id_arena arena;
  const node_id first_ops[] = {10, 20};
  const node_id* first = arena.intern(first_ops, 2);
  // Force several chunk growths; earlier spans must not move.
  std::vector<node_id> big(300);
  for (int round = 0; round < 100; ++round) {
    for (std::size_t i = 0; i < big.size(); ++i) {
      big[i] = static_cast<node_id>(round * 1000 + i);
    }
    const node_id* span = arena.intern(big.data(), big.size());
    EXPECT_EQ(span[0], static_cast<node_id>(round * 1000));
    EXPECT_EQ(span[big.size() - 1],
              static_cast<node_id>(round * 1000 + big.size() - 1));
  }
  EXPECT_EQ(first[0], 10u);
  EXPECT_EQ(first[1], 20u);
  EXPECT_EQ(arena.size(), 2u + 100u * 300u);
}

TEST(ArenaTest, ClearReusesStorage) {
  id_arena arena;
  std::vector<node_id> ops(2000);
  for (std::size_t i = 0; i < ops.size(); ++i) {
    ops[i] = static_cast<node_id>(i);
  }
  arena.intern(ops.data(), ops.size());
  const std::size_t cap_before = arena.capacity_bytes();
  arena.clear();
  EXPECT_EQ(arena.size(), 0u);
  EXPECT_GT(arena.capacity_bytes(), 0u);  // largest chunk is kept
  const node_id* span = arena.intern(ops.data(), 100);
  EXPECT_EQ(span[99], 99u);
  EXPECT_LE(arena.capacity_bytes(), cap_before);  // no fresh allocation
}

namespace {

/// A moderately sized random DAG built through the public builder, with
/// varied operand arity (unary through add_many).
graph arena_stress_graph(std::uint64_t seed, int ops) {
  graph g;
  builder b(g);
  rng r(seed);
  std::vector<node_id> pool;
  for (int i = 0; i < 8; ++i) {
    pool.push_back(b.input(16, "in" + std::to_string(i)));
  }
  for (int i = 0; i < ops; ++i) {
    const node_id a = pool[r.next_below(pool.size())];
    const node_id c = pool[r.next_below(pool.size())];
    switch (r.next_below(4)) {
      case 0: pool.push_back(b.add(a, c)); break;
      case 1: pool.push_back(b.bnot(a)); break;
      case 2: pool.push_back(b.mux(b.ult(a, c), a, c)); break;
      default: {
        const std::vector<node_id> many = {a, c, pool[r.next_below(pool.size())]};
        pool.push_back(b.add_many(many));
        break;
      }
    }
  }
  b.output(pool.back());
  return g;
}

/// Node-by-node structural equality, reading every operand element (so a
/// dangling operand span would be caught by sanitizers, not just by
/// comparison).
void expect_same_structure(const graph& a, const graph& b) {
  ASSERT_EQ(a.num_nodes(), b.num_nodes());
  for (node_id v = 0; v < a.num_nodes(); ++v) {
    const node& na = a.at(v);
    const node& nb = b.at(v);
    EXPECT_EQ(na.op, nb.op);
    ASSERT_EQ(na.operands.size(), nb.operands.size());
    for (std::size_t i = 0; i < na.operands.size(); ++i) {
      EXPECT_EQ(na.operands[i], nb.operands[i]);
    }
    EXPECT_EQ(a.users(v), b.users(v));
  }
}

}  // namespace

TEST(GraphArenaTest, CopyReintternsOperandsIntoOwnArena) {
  const graph original = arena_stress_graph(1, 400);
  const graph copy = original;
  expect_same_structure(original, copy);
  // The copy's operand spans must live in its own arena, not alias the
  // original's (which could be destroyed first).
  for (node_id v = 0; v < original.num_nodes(); ++v) {
    if (original.at(v).operands.size() > 0) {
      EXPECT_NE(original.at(v).operands.data(), copy.at(v).operands.data());
    }
  }
}

TEST(GraphArenaTest, AssignmentChurnKeepsOperandsStable) {
  // Repeatedly assign graphs of very different sizes into one target:
  // each assignment clears and re-interns the target's arena, so stale
  // spans from the previous occupant must never survive.
  graph target = arena_stress_graph(2, 50);
  for (int round = 0; round < 6; ++round) {
    const int ops = (round % 2 == 0) ? 700 : 30;
    const graph source = arena_stress_graph(10 + round, ops);
    target = source;
    expect_same_structure(source, target);
  }
}

TEST(GraphArenaTest, MoveKeepsSpansValid) {
  graph original = arena_stress_graph(3, 300);
  const graph snapshot = original;  // independent copy for comparison
  const graph moved = std::move(original);
  // Arena chunks are stable allocations, so a move transfers them and the
  // operand spans keep pointing at live storage.
  expect_same_structure(snapshot, moved);
}

}  // namespace
}  // namespace isdc::ir
