// Backend subsystem: netlist export (Verilog + text, golden and
// round-trip), the spec-string registry, and the resilient composition
// tools (fallback chain, online calibration, latency jitter).
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <stdexcept>
#include <string>
#include <thread>

#include "backend/netlist.h"
#include "backend/registry.h"
#include "backend/resilient.h"
#include "core/downstream.h"
#include "core/isdc_scheduler.h"
#include "extract/cone.h"
#include "extract/path_enum.h"
#include "extract/scoring.h"
#include "extract/subgraph.h"
#include "ir/builder.h"
#include "ir/verify.h"
#include "workloads/registry.h"

namespace isdc {
namespace {

/// A graph touching every opcode the text format must carry.
ir::graph every_opcode_graph() {
  ir::graph g("every_op");
  ir::builder b(g);
  const ir::node_id a = b.input(8, "a");
  const ir::node_id c = b.input(8, "c");
  const ir::node_id k = b.constant(8, 0x5a);
  const ir::node_id amt = b.input(3, "amt");
  const ir::node_id amt8 = b.zext(amt, 8);
  const ir::node_id sum = b.add(a, c);
  const ir::node_id dif = b.sub(sum, k);
  const ir::node_id ng = b.neg(dif);
  const ir::node_id prod = b.mul(ng, a);
  const ir::node_id an = b.band(prod, c);
  const ir::node_id orr = b.bor(an, k);
  const ir::node_id xo = b.bxor(orr, a);
  const ir::node_id nt = b.bnot(xo);
  const ir::node_id sl = b.shl(nt, amt8);
  const ir::node_id sr = b.shr(sl, amt8);
  const ir::node_id rl = b.rotl(sr, amt8);
  const ir::node_id rr = b.rotr(rl, amt8);
  const ir::node_id e = b.eq(rr, a);
  const ir::node_id n = b.ne(rr, c);
  const ir::node_id lt = b.ult(rr, k);
  const ir::node_id le = b.ule(rr, a);
  const ir::node_id m = b.mux(e, rr, a);
  const ir::node_id cat = b.concat(m, c);
  const ir::node_id sli = b.slice(cat, 4, 8);
  const ir::node_id sx = b.sext(sli, 16);
  b.output(sx);
  b.output(n);
  b.output(lt);
  b.output(le);
  return g;
}

/// The top-ranked critical cone of a registry workload under its classic
/// SDC baseline, extracted standalone — the unit ISDC ships downstream.
ir::graph top_cone_ir(const std::string& workload) {
  const workloads::workload_spec* spec = workloads::find_workload(workload);
  EXPECT_NE(spec, nullptr) << workload;
  const ir::graph g = spec->build();
  core::isdc_options opts;
  opts.base.clock_period_ps = spec->clock_period_ps;
  sched::delay_matrix delays(0);
  const sched::schedule baseline =
      core::run_sdc_baseline(g, opts, nullptr, &delays);
  auto paths = extract::enumerate_candidate_paths(g, baseline, delays);
  const auto ranked = extract::rank_candidates(
      g, baseline, spec->clock_period_ps,
      extract::extraction_strategy::fanout_driven, std::move(paths));
  EXPECT_FALSE(ranked.empty()) << workload;
  const extract::subgraph cone =
      extract::expand_to_cone(g, baseline, ranked.front().path);
  return extract::subgraph_to_ir(g, cone).g;
}

TEST(BackendNetlistText, RoundTripsEveryOpcode) {
  const ir::graph g = every_opcode_graph();
  ASSERT_EQ(ir::verify(g), "");

  const std::string text = backend::to_text(g);
  const ir::graph parsed = backend::from_text(text);
  EXPECT_EQ(parsed.fingerprint(), g.fingerprint());
  EXPECT_EQ(parsed.num_nodes(), g.num_nodes());
  EXPECT_EQ(parsed.outputs(), g.outputs());
  // Re-serialization is stable: parse(print) is a fixed point.
  EXPECT_EQ(backend::to_text(parsed), text);
}

TEST(BackendNetlistText, OneLineFormMatchesMultiLine) {
  const ir::graph g = every_opcode_graph();
  const std::string one_line = backend::to_text(g, ';');
  EXPECT_EQ(one_line.find('\n'), std::string::npos);
  const ir::graph parsed = backend::from_text(one_line);
  EXPECT_EQ(parsed.fingerprint(), g.fingerprint());
}

TEST(BackendNetlistText, RejectsMalformedInput) {
  const auto expect_error = [](const std::string& text,
                               const std::string& needle) {
    try {
      backend::from_text(text);
      FAIL() << "expected parse failure for: " << text;
    } catch (const std::runtime_error& e) {
      EXPECT_NE(std::string(e.what()).find(needle), std::string::npos)
          << "message '" << e.what() << "' lacks '" << needle << "'";
    }
  };
  expect_error("", "empty");
  expect_error("bogus header", "isdc-graph");
  expect_error("isdc-graph 99;node input 8 0;out 0;end", "version");
  expect_error("isdc-graph 1;node warp 8 0;out 0;end", "unknown opcode");
  expect_error("isdc-graph 1;node input 8 0;node add 8 0 0 5;out 1;end",
               "does not precede");
  expect_error("isdc-graph 1;node input 8 0;node add 8 0 0;out 1;end",
               "operand");
  expect_error("isdc-graph 1;node input 0 0;out 0;end", "width");
  expect_error("isdc-graph 1;node input 8 0;out 0", "end");
  expect_error("isdc-graph 1;node input 8 0;out 0;end;node input 8 0",
               "trailing");
  // Structurally well-formed lines whose graph violates IR width rules
  // still fail (via ir::verify), not silently mis-time.
  expect_error(
      "isdc-graph 1;node input 8 0;node input 4 0;node add 8 0 0 1;"
      "out 2;end",
      "malformed");
}

TEST(BackendNetlistVerilog, GoldenSmallModule) {
  ir::graph g("t");
  ir::builder b(g);
  const ir::node_id a = b.input(8, "a");
  const ir::node_id c = b.input(8, "b");
  b.output(b.add(a, c));
  const std::string expected =
      "// generated by isdc backend::to_verilog (graph: t)\n"
      "module t(\n"
      "  input wire [7:0] pi0,  // a\n"
      "  input wire [7:0] pi1,  // b\n"
      "  output wire [7:0] po0\n"
      ");\n"
      "  wire [7:0] n2;\n"
      "  assign n2 = pi0 + pi1;\n"
      "  assign po0 = n2;\n"
      "endmodule\n";
  EXPECT_EQ(backend::to_verilog(g), expected);
}

// The golden guarantee on real extracted cones: deterministic bytes
// across exports, and a lossless text round trip (identical structural
// fingerprint — the identity the evaluation cache keys descend from).
TEST(BackendNetlistGolden, RegistryConesStableAndRoundTrip) {
  for (const std::string workload : {"crc32", "rrot", "hsv2rgb"}) {
    const ir::graph cone = top_cone_ir(workload);
    ASSERT_EQ(ir::verify(cone), "") << workload;

    const std::string verilog = backend::to_verilog(cone);
    EXPECT_EQ(backend::to_verilog(cone), verilog) << workload;
    EXPECT_NE(verilog.find("module "), std::string::npos);
    // Every input and output appears as a port.
    for (std::size_t k = 0; k < cone.inputs().size(); ++k) {
      EXPECT_NE(verilog.find("pi" + std::to_string(k)), std::string::npos)
          << workload;
    }
    for (std::size_t k = 0; k < cone.outputs().size(); ++k) {
      EXPECT_NE(verilog.find("po" + std::to_string(k)), std::string::npos)
          << workload;
    }

    const std::string text = backend::to_text(cone);
    EXPECT_EQ(backend::to_text(cone), text) << workload;
    const ir::graph parsed = backend::from_text(text);
    EXPECT_EQ(parsed.fingerprint(), cone.fingerprint()) << workload;
    EXPECT_EQ(backend::to_text(parsed), text) << workload;
  }
}

TEST(BackendRegistry, BuildsLeafTools) {
  const backend::tool_handle synthesis = backend::make_tool("synthesis");
  EXPECT_EQ(synthesis.tool().name().rfind("synthesis+sta(", 0), 0u);
  EXPECT_EQ(synthesis.subprocess(), nullptr);
  EXPECT_EQ(synthesis.spec(), "synthesis");

  const backend::tool_handle depth =
      backend::make_tool("aig-depth:ps=100,offset=5");
  EXPECT_EQ(depth.tool().name().rfind("aig-depth(100ps/lvl+5ps", 0), 0u);
}

TEST(BackendRegistry, BuildsComposites) {
  const backend::tool_handle latency =
      backend::make_tool("latency(aig-depth:ps=70):ms=1");
  EXPECT_EQ(latency.tool().name().rfind("latency(1ms,aig-depth(70", 0), 0u);

  // The documented merge rule: parameters following a child spec bind to
  // that child, not to the composite or a new child.
  const backend::tool_handle chain =
      backend::make_tool("fallback(aig-depth:ps=70,offset=3,aig-depth)");
  EXPECT_EQ(chain.tool().name(),
            "fallback(" +
                backend::make_tool("aig-depth:ps=70,offset=3").tool().name() +
                "," + backend::make_tool("aig-depth").tool().name() + ")");

  const backend::tool_handle cal =
      backend::make_tool("calibrated(aig-depth,synthesis):every=4");
  EXPECT_NE(cal.tool().name().find("every=4"), std::string::npos);
}

TEST(BackendRegistry, RejectsBadSpecs) {
  const auto expect_error = [](const std::string& spec,
                               const std::string& needle) {
    try {
      backend::make_tool(spec);
      FAIL() << "expected spec failure for: " << spec;
    } catch (const std::runtime_error& e) {
      EXPECT_NE(std::string(e.what()).find(needle), std::string::npos)
          << "message '" << e.what() << "' lacks '" << needle << "'";
    }
  };
  expect_error("", "empty");
  expect_error("warp-drive", "unknown tool");
  expect_error("aig-depth:warp=1", "unknown parameter");
  expect_error("aig-depth:ps=fast", "not a number");
  expect_error("aig-depth:ps=80,ps=90", "duplicate");
  expect_error("fallback(aig-depth", "unbalanced");
  expect_error("subprocess", "cmd=");
  expect_error("latency(aig-depth,synthesis):ms=1", "child");
  expect_error("latency(aig-depth)x", "unexpected text");
}

/// Always-failing link for fallback tests.
class failing_tool final : public core::downstream_tool {
public:
  double subgraph_delay_ps(const ir::graph&) const override {
    throw std::runtime_error("backend down");
  }
  std::string name() const override { return "failing"; }
};

/// Structural stand-in oracle: delay = ps-per-node times the node count.
class node_count_tool final : public core::downstream_tool {
public:
  explicit node_count_tool(double ps_per_node, double offset = 0.0)
      : ps_per_node_(ps_per_node), offset_(offset) {}
  double subgraph_delay_ps(const ir::graph& sub) const override {
    return offset_ + ps_per_node_ * static_cast<double>(sub.num_nodes());
  }
  std::string name() const override { return "node-count"; }

private:
  double ps_per_node_;
  double offset_;
};

TEST(BackendFallback, FallsThroughFailingLinks) {
  const failing_tool down;
  const node_count_tool up(10.0);
  const backend::fallback_tool chain({&down, &up});
  const ir::graph g = every_opcode_graph();

  EXPECT_EQ(chain.subgraph_delay_ps(g), 10.0 * g.num_nodes());
  const auto stats = chain.stats();
  ASSERT_EQ(stats.size(), 2u);
  EXPECT_EQ(stats[0].calls, 1u);
  EXPECT_EQ(stats[0].failures, 1u);
  EXPECT_EQ(stats[1].calls, 1u);
  EXPECT_EQ(stats[1].failures, 0u);
  EXPECT_EQ(chain.name(), "fallback(failing,node-count)");
}

TEST(BackendFallback, RethrowsWhenEveryLinkFails) {
  const failing_tool a;
  const failing_tool b;
  const backend::fallback_tool chain({&a, &b});
  EXPECT_THROW(chain.subgraph_delay_ps(every_opcode_graph()),
               std::runtime_error);
  EXPECT_EQ(chain.stats()[1].failures, 1u);
}

TEST(BackendCalibrated, RecoversLinearReference) {
  // reference = 3 * proxy + 100 exactly; the online fit must converge to
  // it and calibrated answers must then match the reference.
  const node_count_tool proxy(1.0);
  const node_count_tool reference(3.0, 100.0);
  const backend::calibrated_tool cal(proxy, reference, /*sample_every=*/1);

  // Graphs of different sizes give the fit distinct x values.
  for (int n = 0; n < 6; ++n) {
    ir::graph g("g");
    ir::builder b(g);
    ir::node_id v = b.input(8, "x");
    for (int i = 0; i <= n; ++i) {
      v = b.add(v, v);
    }
    b.output(v);
    cal.subgraph_delay_ps(g);
  }
  const backend::calibrated_tool::fit f = cal.current_fit();
  EXPECT_EQ(f.samples, 6u);
  EXPECT_NEAR(f.slope, 3.0, 1e-9);
  EXPECT_NEAR(f.offset, 100.0, 1e-6);

  ir::graph g("probe");
  ir::builder b(g);
  b.output(b.add(b.input(8, "a"), b.input(8, "c")));
  EXPECT_NEAR(cal.subgraph_delay_ps(g), reference.subgraph_delay_ps(g),
              1e-6);
  EXPECT_GE(cal.reference_calls(), 6u);
}

TEST(BackendCalibrated, SurvivesReferenceFailure) {
  const node_count_tool proxy(2.0);
  const failing_tool reference;
  const backend::calibrated_tool cal(proxy, reference, /*sample_every=*/1);
  const ir::graph g = every_opcode_graph();
  // Reference throws on its sparse sample; the call still answers with
  // the (unfitted) proxy.
  EXPECT_EQ(cal.subgraph_delay_ps(g), 2.0 * g.num_nodes());
  EXPECT_EQ(cal.reference_failures(), 1u);
  EXPECT_EQ(cal.current_fit().samples, 0u);
}

TEST(CoreLatency, JitterAndObservedStats) {
  const node_count_tool inner(1.0);
  using std::chrono::milliseconds;
  // chrono-friendly construction (the satellite API): any duration works.
  const core::latency_downstream tool(inner, milliseconds(4),
                                      milliseconds(2));
  const ir::graph g = every_opcode_graph();
  for (int i = 0; i < 8; ++i) {
    EXPECT_EQ(tool.subgraph_delay_ps(g), 1.0 * g.num_nodes());
  }
  EXPECT_EQ(tool.calls(), 8u);
  const core::latency_downstream::latency_stats s = tool.observed();
  EXPECT_EQ(s.calls, 8u);
  // sleep_for guarantees at least the requested time: >= 4 - 2 = 2 ms.
  EXPECT_GE(s.min_ms, 1.9);
  EXPECT_GE(s.max_ms, s.min_ms);
  EXPECT_GE(s.mean_ms, s.min_ms);
  EXPECT_LE(s.mean_ms, s.max_ms);
  EXPECT_NE(tool.name().find("4ms~2ms"), std::string::npos);
}

TEST(CoreLatency, ZeroJitterKeepsLegacyName) {
  const node_count_tool inner(1.0);
  const core::latency_downstream tool(inner, 0.0);
  EXPECT_EQ(tool.name(), "latency(0ms,node-count)");
  EXPECT_EQ(tool.observed().calls, 0u);
}

/// Fails its first `failures` calls, then answers like node_count_tool.
class flaky_tool final : public core::downstream_tool {
public:
  explicit flaky_tool(int failures) : failures_(failures) {}
  double subgraph_delay_ps(const ir::graph& sub) const override {
    if (calls_.fetch_add(1) < failures_) {
      throw std::runtime_error("warming up");
    }
    return static_cast<double>(sub.num_nodes());
  }
  std::string name() const override { return "flaky"; }

private:
  int failures_;
  mutable std::atomic<int> calls_{0};
};

TEST(BackendBreaker, OpensAtFailureRateThenShortCircuits) {
  const failing_tool child;
  backend::circuit_breaker_options o;
  o.window = 4;
  o.min_calls = 4;
  o.threshold = 0.5;
  o.cooldown_ms = 60000.0;  // never half-opens within this test
  const backend::circuit_breaker_tool breaker(child, o);
  const ir::graph g = every_opcode_graph();

  for (int i = 0; i < 4; ++i) {
    EXPECT_THROW(breaker.subgraph_delay_ps(g), std::runtime_error);
  }
  EXPECT_EQ(breaker.state(),
            backend::circuit_breaker_tool::breaker_state::open);

  // Open: the child is never consulted again — the failure is instant.
  for (int i = 0; i < 3; ++i) {
    EXPECT_THROW(breaker.subgraph_delay_ps(g), backend::circuit_open_error);
  }
  const auto c = breaker.stats();
  EXPECT_EQ(c.calls, 4u);  // only the pre-open calls reached the child
  EXPECT_EQ(c.failures, 4u);
  EXPECT_EQ(c.short_circuits, 3u);
  EXPECT_EQ(c.opens, 1u);
  EXPECT_NE(breaker.name().find("breaker(failing"), std::string::npos);
}

TEST(BackendBreaker, HalfOpenProbeSuccessCloses) {
  const flaky_tool child(4);  // dead for 4 calls, healthy afterwards
  backend::circuit_breaker_options o;
  o.window = 4;
  o.min_calls = 4;
  o.threshold = 0.5;
  o.cooldown_ms = 5.0;
  const backend::circuit_breaker_tool breaker(child, o);
  const ir::graph g = every_opcode_graph();

  for (int i = 0; i < 4; ++i) {
    EXPECT_THROW(breaker.subgraph_delay_ps(g), std::runtime_error);
  }
  ASSERT_EQ(breaker.state(),
            backend::circuit_breaker_tool::breaker_state::open);

  // After the cool-down the next call is admitted as a half-open probe;
  // the child recovered, so the probe closes the circuit.
  std::this_thread::sleep_for(std::chrono::milliseconds(15));
  EXPECT_EQ(breaker.subgraph_delay_ps(g),
            static_cast<double>(g.num_nodes()));
  EXPECT_EQ(breaker.state(),
            backend::circuit_breaker_tool::breaker_state::closed);
  EXPECT_EQ(breaker.stats().closes, 1u);
  EXPECT_EQ(breaker.subgraph_delay_ps(g),
            static_cast<double>(g.num_nodes()));
}

TEST(BackendBreaker, HalfOpenProbeFailureReopens) {
  const failing_tool child;
  backend::circuit_breaker_options o;
  o.window = 2;
  o.min_calls = 2;
  o.threshold = 0.5;
  o.cooldown_ms = 5.0;
  const backend::circuit_breaker_tool breaker(child, o);
  const ir::graph g = every_opcode_graph();

  for (int i = 0; i < 2; ++i) {
    EXPECT_THROW(breaker.subgraph_delay_ps(g), std::runtime_error);
  }
  ASSERT_EQ(breaker.state(),
            backend::circuit_breaker_tool::breaker_state::open);
  std::this_thread::sleep_for(std::chrono::milliseconds(15));
  // The probe reaches the (still dead) child and reopens the circuit for
  // another cool-down; the very next call short-circuits again.
  EXPECT_THROW(breaker.subgraph_delay_ps(g), std::runtime_error);
  EXPECT_EQ(breaker.state(),
            backend::circuit_breaker_tool::breaker_state::open);
  EXPECT_EQ(breaker.stats().reopens, 1u);
  EXPECT_THROW(breaker.subgraph_delay_ps(g), backend::circuit_open_error);
}

TEST(BackendBreaker, InsideFallbackDegradesCheaply) {
  // The canonical composition: a breaker-wrapped flaky primary with an
  // always-on structural fallback. Once the breaker opens, the chain's
  // first link fails in microseconds (no child call, no deadline) and
  // every answer comes from the fallback.
  const failing_tool primary;
  backend::circuit_breaker_options o;
  o.window = 2;
  o.min_calls = 2;
  o.cooldown_ms = 60000.0;
  const backend::circuit_breaker_tool guarded(primary, o);
  const node_count_tool backup(10.0);
  const backend::fallback_tool chain({&guarded, &backup});
  const ir::graph g = every_opcode_graph();

  for (int i = 0; i < 6; ++i) {
    EXPECT_EQ(chain.subgraph_delay_ps(g), 10.0 * g.num_nodes());
  }
  EXPECT_EQ(guarded.stats().calls, 2u);  // the rest short-circuited
  EXPECT_EQ(guarded.stats().short_circuits, 4u);
  EXPECT_EQ(chain.stats()[1].calls, 6u);
}

TEST(BackendRegistry, BuildsBreakerSpec) {
  const backend::tool_handle breaker = backend::make_tool(
      "breaker(aig-depth:ps=70):window=8,threshold=0.25,cooldown_ms=50");
  EXPECT_EQ(breaker.tool().name().rfind("breaker(aig-depth(70", 0), 0u);
  EXPECT_NE(breaker.tool().name().find("w=8"), std::string::npos);

  try {
    backend::make_tool("breaker(aig-depth):warp=1");
    FAIL() << "expected unknown-parameter rejection";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("unknown parameter"),
              std::string::npos);
  }
  EXPECT_THROW(backend::make_tool("breaker(aig-depth,synthesis)"),
               std::runtime_error);
}

}  // namespace
}  // namespace isdc
