#include <algorithm>
#include <atomic>
#include <utility>

#include <gtest/gtest.h>

#include "core/delay_update.h"
#include "core/downstream.h"
#include "core/floyd_warshall.h"
#include "core/isdc_scheduler.h"
#include "core/reformulate.h"
#include "ir/builder.h"
#include "sched/metrics.h"
#include "sched/scheduler_instance.h"
#include "sched/validate.h"
#include "support/rng.h"
#include "test_util.h"

namespace isdc::core {
namespace {

sched::delay_matrix uniform_matrix(const ir::graph& g, double unit) {
  return sched::delay_matrix::initial(g, [&g, unit](ir::node_id v) {
    const ir::opcode op = g.at(v).op;
    return op == ir::opcode::input || op == ir::opcode::constant ? 0.0
                                                                 : unit;
  });
}

TEST(DelayUpdateTest, OnlyLowersCoveredConnectedPairs) {
  ir::graph g;
  ir::builder bl(g);
  const ir::node_id x = bl.input(8, "x");
  const ir::node_id a = bl.bnot(x);
  const ir::node_id b = bl.bnot(a);
  const ir::node_id c = bl.bnot(b);
  g.mark_output(c);
  sched::delay_matrix d = uniform_matrix(g, 100.0);
  ASSERT_FLOAT_EQ(d.get(a, b), 200.0f);
  ASSERT_FLOAT_EQ(d.get(a, c), 300.0f);

  // Feedback: subgraph {a, b} measured at 150 ps.
  const evaluated_subgraph eval{{a, b}, 150.0};
  const auto lowered = update_delay_matrix(d, {&eval, 1});
  EXPECT_FLOAT_EQ(d.get(a, b), 150.0f);   // lowered
  EXPECT_FLOAT_EQ(d.get(a, c), 300.0f);   // not covered: unchanged
  EXPECT_FLOAT_EQ(d.get(b, a), sched::delay_matrix::not_connected);
  // The update reports exactly the pairs it lowered: (a, b) alone — the
  // self delays are already below 150 and (b, a) is unconnected.
  ASSERT_EQ(lowered.size(), 1u);
  EXPECT_EQ(lowered[0], std::make_pair(a, b));
}

TEST(DelayUpdateTest, NeverRaises) {
  ir::graph g;
  ir::builder bl(g);
  const ir::node_id x = bl.input(8, "x");
  const ir::node_id a = bl.bnot(x);
  const ir::node_id b = bl.bnot(a);
  g.mark_output(b);
  sched::delay_matrix d = uniform_matrix(g, 100.0);
  const evaluated_subgraph eval{{a, b}, 999.0};  // worse than estimate
  EXPECT_TRUE(update_delay_matrix(d, {&eval, 1}).empty());
  EXPECT_FLOAT_EQ(d.get(a, b), 200.0f);  // unchanged
}

TEST(ReformulateTest, Alg2PropagatesSubgraphImprovement) {
  // Chain a -> b -> c; feedback lowers (a, b); Alg. 2 must propagate the
  // improvement into (a, c) by composing D[a][b] + d(c).
  ir::graph g;
  ir::builder bl(g);
  const ir::node_id x = bl.input(8, "x");
  const ir::node_id a = bl.bnot(x);
  const ir::node_id b = bl.bnot(a);
  const ir::node_id c = bl.bnot(b);
  g.mark_output(c);
  sched::delay_matrix d = uniform_matrix(g, 100.0);
  const evaluated_subgraph eval{{a, b}, 120.0};
  update_delay_matrix(d, {&eval, 1});
  const auto changed = reformulate_alg2(g, d);
  EXPECT_FLOAT_EQ(d.get(a, c), 220.0f);  // 120 + 100
  EXPECT_FLOAT_EQ(d.get(x, c), 220.0f);
  // The propagated entries are reported.
  EXPECT_NE(std::find(changed.begin(), changed.end(), std::make_pair(a, c)),
            changed.end());
  EXPECT_NE(std::find(changed.begin(), changed.end(), std::make_pair(x, c)),
            changed.end());
}

TEST(ReformulateTest, Alg2NeverRaisesEntries) {
  rng r(8);
  const ir::graph g = isdc::testing::random_graph(r, 3, 20, 8);
  sched::delay_matrix d = uniform_matrix(g, 100.0);
  sched::delay_matrix before = d;
  reformulate_alg2(g, d);
  for (ir::node_id u = 0; u < g.num_nodes(); ++u) {
    for (ir::node_id v = 0; v < g.num_nodes(); ++v) {
      if (before.connected(u, v)) {
        EXPECT_LE(d.get(u, v), before.get(u, v) + 1e-3f);
      }
    }
  }
}

TEST(ReformulateTest, Alg2AndFloydWarshallOnlyEverLower) {
  // Both reformulations are monotone: they refine (never raise) the
  // feedback-updated matrix and preserve the connectivity pattern. They
  // are *different* estimators — the paper's Fig. 7 quantifies how close
  // the O(n^2) Alg. 2 stays to the O(n^3) reference — so no entry-wise
  // ordering between them is asserted here.
  rng r(12);
  for (int trial = 0; trial < 5; ++trial) {
    const ir::graph g = isdc::testing::random_graph(r, 3, 18, 8);
    sched::delay_matrix d = uniform_matrix(g, 100.0);
    // Random feedback on a few member sets.
    std::vector<evaluated_subgraph> evals;
    for (int e = 0; e < 3; ++e) {
      evaluated_subgraph ev;
      for (ir::node_id v = 0; v < g.num_nodes(); ++v) {
        if (r.next_bool(0.3)) {
          ev.members.push_back(v);
        }
      }
      ev.delay_ps = 80.0 + 40.0 * static_cast<double>(e);
      if (!ev.members.empty()) {
        evals.push_back(ev);
      }
    }
    update_delay_matrix(d, evals);
    sched::delay_matrix alg2 = d;
    sched::delay_matrix fw = d;
    reformulate_alg2(g, alg2);
    reformulate_floyd_warshall(g, fw);
    for (ir::node_id u = 0; u < g.num_nodes(); ++u) {
      for (ir::node_id v = 0; v < g.num_nodes(); ++v) {
        EXPECT_EQ(d.connected(u, v), fw.connected(u, v));
        EXPECT_EQ(d.connected(u, v), alg2.connected(u, v));
        if (d.connected(u, v)) {
          EXPECT_LE(fw.get(u, v), d.get(u, v) + 1e-3f)
              << "FW raised (" << u << ", " << v << ") trial " << trial;
          EXPECT_LE(alg2.get(u, v), d.get(u, v) + 1e-3f)
              << "Alg2 raised (" << u << ", " << v << ") trial " << trial;
        }
      }
    }
  }
}

TEST(ReformulateTest, FloydWarshallHandComputedComposition) {
  // Chain a -> b -> c with (a, b) fed back at 120: FW composes
  // D[a][c] = D[a][b] + D[b][c] - d(b) = 120 + 200 - 100 = 220.
  ir::graph g;
  ir::builder bl(g);
  const ir::node_id x = bl.input(8, "x");
  const ir::node_id a = bl.bnot(x);
  const ir::node_id b = bl.bnot(a);
  const ir::node_id c = bl.bnot(b);
  g.mark_output(c);
  sched::delay_matrix d = uniform_matrix(g, 100.0);
  const evaluated_subgraph eval{{a, b}, 120.0};
  update_delay_matrix(d, {&eval, 1});
  reformulate_floyd_warshall(g, d);
  EXPECT_FLOAT_EQ(d.get(a, c), 220.0f);
}

TEST(DownstreamTest, SynthesisToolReturnsPositiveDelay) {
  ir::graph g("sub");
  ir::builder bl(g);
  bl.output(bl.add(bl.input(8, "a"), bl.input(8, "b")));
  synthesis_downstream tool;
  const double delay = tool.subgraph_delay_ps(g);
  EXPECT_GT(delay, 100.0);
  EXPECT_LT(delay, 2500.0);
  // The name carries the configuration (it scopes the evaluation cache).
  EXPECT_EQ(tool.name(), "synthesis+sta(r2+rw+rf,cut4x10)");
}

TEST(DownstreamTest, AigDepthToolScalesWithDepth) {
  ir::graph shallow("shallow");
  {
    ir::builder bl(shallow);
    bl.output(bl.bxor(bl.input(8, "a"), bl.input(8, "b")));
  }
  ir::graph deep("deep");
  {
    ir::builder bl(deep);
    ir::node_id v = bl.input(8, "a");
    const ir::node_id w = bl.input(8, "b");
    for (int i = 0; i < 4; ++i) {
      v = bl.add(v, w);
    }
    deep.mark_output(v);
  }
  aig_depth_downstream tool(80.0);
  EXPECT_LT(tool.subgraph_delay_ps(shallow), tool.subgraph_delay_ps(deep));
  EXPECT_EQ(tool.name(), "aig-depth(80ps/lvl+0ps,r2+rw+rf,cut4x10)");
}

/// Counting downstream tool for loop-behavior tests.
class counting_downstream final : public downstream_tool {
public:
  explicit counting_downstream(double delay) : delay_(delay) {}
  double subgraph_delay_ps(const ir::graph&) const override {
    ++calls_;
    return delay_;
  }
  std::string name() const override { return "counting"; }
  int calls() const { return calls_.load(); }

private:
  double delay_;
  mutable std::atomic<int> calls_{0};
};

/// A deep chain whose true (fed back) delays allow denser packing.
ir::graph make_chain_graph(int length) {
  ir::graph g("chain");
  ir::builder bl(g);
  ir::node_id v = bl.input(32, "x");
  for (int i = 0; i < length; ++i) {
    v = bl.bnot(v);
  }
  g.mark_output(v);
  return g;
}

TEST(IsdcLoopTest, ReducesRegistersOnChain) {
  const ir::graph g = make_chain_graph(8);
  // Naive model: every op 600 ps; downstream says any cloud is 650 ps.
  // At Tclk = 1300: naive packs 2 ops/stage (4 stages); with feedback the
  // chain packs progressively denser (650 + 600 composes under 1300).
  isdc_options opts;
  opts.base.clock_period_ps = 1300.0;
  opts.max_iterations = 8;
  opts.subgraphs_per_iteration = 4;
  opts.num_threads = 2;
  counting_downstream tool(650.0);

  // Uniform 600 ps naive model via a custom delay model is not available
  // through run_isdc (it characterizes for real), so drive the loop parts
  // manually here — the hand-driven incremental flow: the touched pairs
  // reported by the Alg. 1 update and the Alg. 2 reformulation feed the
  // scheduler instance's re-solve directly.
  sched::delay_matrix d = uniform_matrix(g, 600.0);
  sched::scheduler_options base;
  base.clock_period_ps = 1300.0;
  sched::scheduler_instance instance(g, base);
  sched::schedule s = instance.solve(d);
  const std::int64_t initial_bits = sched::register_bits(g, s);
  EXPECT_EQ(s.num_stages(), 4);

  for (int iter = 0; iter < 6; ++iter) {
    auto candidates = extract::enumerate_candidate_paths(g, s, d);
    if (candidates.empty()) {
      break;
    }
    const auto ranked = extract::rank_candidates(
        g, s, 1300.0, extract::extraction_strategy::fanout_driven,
        std::move(candidates));
    std::vector<evaluated_subgraph> evals;
    for (std::size_t i = 0; i < ranked.size() && i < 4; ++i) {
      const auto sub = extract::expand_to_cone(g, s, ranked[i].path);
      evals.push_back({sub.members, tool.subgraph_delay_ps(g)});
    }
    std::vector<sched::delay_matrix::node_pair> changed =
        update_delay_matrix(d, evals);
    const auto reformulated = reformulate_alg2(g, d);
    changed.insert(changed.end(), reformulated.begin(), reformulated.end());
    s = instance.resolve(d, changed);
    EXPECT_EQ(s, sched::sdc_schedule(g, d, base)) << "iteration " << iter;
  }
  EXPECT_LT(sched::register_bits(g, s), initial_bits);
  EXPECT_LT(s.num_stages(), 4);
  EXPECT_TRUE(sched::validate_schedule(g, s, d, 1300.0).empty());
}

TEST(IsdcLoopTest, EndToEndRunIsdcOnRealDesign) {
  // Full run_isdc with the real synthesis downstream on a small design.
  ir::graph g("adders");
  ir::builder bl(g);
  const ir::node_id a = bl.input(32, "a");
  const ir::node_id b = bl.input(32, "b");
  const ir::node_id c = bl.input(32, "c");
  const ir::node_id d = bl.input(32, "d");
  bl.output(bl.add(bl.add(bl.add(a, b), c), d));

  isdc_options opts;
  opts.base.clock_period_ps = 2500.0;
  opts.max_iterations = 6;
  opts.subgraphs_per_iteration = 4;
  opts.num_threads = 2;
  synthesis_downstream tool(opts.synth);
  const isdc_result result = run_isdc(g, tool, opts);

  ASSERT_FALSE(result.history.empty());
  EXPECT_EQ(result.history[0].register_bits,
            sched::register_bits(g, result.initial));
  // ISDC must never end up worse than the baseline.
  EXPECT_LE(sched::register_bits(g, result.final_schedule),
            sched::register_bits(g, result.initial));
  // The final schedule must be legal under the final (fed back) matrix.
  EXPECT_TRUE(sched::validate_schedule(g, result.final_schedule,
                                       result.delays, 2500.0)
                  .empty());
  // The updated matrix is entry-wise <= the naive matrix.
  for (ir::node_id u = 0; u < g.num_nodes(); ++u) {
    for (ir::node_id v = 0; v < g.num_nodes(); ++v) {
      if (result.naive_delays.connected(u, v)) {
        EXPECT_LE(result.delays.get(u, v),
                  result.naive_delays.get(u, v) + 1e-3f);
      }
    }
  }
}

TEST(IsdcLoopTest, SubgraphCacheAvoidsReevaluation) {
  const ir::graph g = make_chain_graph(6);
  isdc_options opts;
  opts.base.clock_period_ps = 2500.0;
  opts.max_iterations = 10;
  opts.subgraphs_per_iteration = 8;
  opts.num_threads = 1;
  opts.convergence_patience = 10;  // force running until exhaustion
  counting_downstream tool(200.0);
  const isdc_result result = run_isdc(g, tool, opts);
  // Every evaluation in the history corresponds to a distinct subgraph:
  // total calls == sum of per-iteration counts, and the loop stopped by
  // exhausting candidates rather than looping forever.
  int recorded = 0;
  for (const auto& rec : result.history) {
    recorded += rec.subgraphs_evaluated;
  }
  EXPECT_EQ(tool.calls(), recorded);
  EXPECT_LT(result.iterations, 10);
}

TEST(IsdcLoopTest, RespectsMaxIterations) {
  const ir::graph g = make_chain_graph(10);
  isdc_options opts;
  opts.base.clock_period_ps = 2500.0;
  opts.max_iterations = 2;
  opts.subgraphs_per_iteration = 1;
  opts.num_threads = 1;
  counting_downstream tool(300.0);
  const isdc_result result = run_isdc(g, tool, opts);
  EXPECT_LE(result.iterations, 2);
  EXPECT_LE(result.history.size(), 3u);
}

TEST(IsdcLoopTest, BaselineMatchesRunIsdcInitial) {
  ir::graph g("pair");
  ir::builder bl(g);
  bl.output(bl.add(bl.input(16, "a"), bl.input(16, "b")));
  isdc_options opts;
  opts.base.clock_period_ps = 2500.0;
  opts.max_iterations = 1;
  synthesis_downstream tool(opts.synth);
  synth::delay_model model(opts.synth);
  const sched::schedule baseline = run_sdc_baseline(g, opts, &model);
  const isdc_result result = run_isdc(g, tool, opts, &model);
  EXPECT_EQ(baseline, result.initial);
}

}  // namespace
}  // namespace isdc::core
