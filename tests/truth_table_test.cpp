#include <gtest/gtest.h>

#include "aig/truth_table.h"
#include "support/rng.h"

namespace isdc::aig {
namespace {

TEST(TruthTableTest, Masks) {
  EXPECT_EQ(tt_mask(0), 1ull);
  EXPECT_EQ(tt_mask(1), 0x3ull);
  EXPECT_EQ(tt_mask(2), 0xfull);
  EXPECT_EQ(tt_mask(4), 0xffffull);
  EXPECT_EQ(tt_mask(6), ~0ull);
}

TEST(TruthTableTest, ProjectionsMatchMinterms) {
  for (int v = 0; v < 6; ++v) {
    const tt6 p = tt_project(v);
    for (int m = 0; m < 64; ++m) {
      EXPECT_EQ((p >> m) & 1, static_cast<tt6>((m >> v) & 1))
          << "var " << v << " minterm " << m;
    }
  }
}

TEST(TruthTableTest, Cofactors) {
  // f = x0 & x1 over 2 vars: tt = 0b1000.
  const tt6 f = 0b1000;
  EXPECT_EQ(tt_cofactor1(f, 0) & tt_mask(2), tt_project(1) & tt_mask(2));
  EXPECT_EQ(tt_cofactor0(f, 0) & tt_mask(2), 0ull);
}

TEST(TruthTableTest, DependsOn) {
  const tt6 f = tt_project(0) ^ tt_project(2);  // x0 xor x2 over 3 vars
  EXPECT_TRUE(tt_depends_on(f, 0, 3));
  EXPECT_FALSE(tt_depends_on(f, 1, 3));
  EXPECT_TRUE(tt_depends_on(f, 2, 3));
}

TEST(TruthTableTest, PermuteIdentity) {
  rng r(3);
  const int perm[6] = {0, 1, 2, 3, 4, 5};
  for (int trial = 0; trial < 20; ++trial) {
    const tt6 f = r.next() & tt_mask(4);
    EXPECT_EQ(tt_permute(f, 4, std::span<const int>(perm, 4)), f);
  }
}

TEST(TruthTableTest, PermuteSwap) {
  // f = x0 & !x1; swapping vars gives x1 & !x0.
  const tt6 f = 0b0010;
  const int perm[2] = {1, 0};
  const tt6 swapped = tt_permute(f, 2, std::span<const int>(perm, 2));
  EXPECT_EQ(swapped, 0b0100ull);
}

TEST(TruthTableTest, PermuteComposesWithEvaluation) {
  // result(x) = f(x_perm...): check bit-by-bit on a random 3-var function.
  rng r(9);
  const tt6 f = r.next() & tt_mask(3);
  const int perm[3] = {2, 0, 1};
  const tt6 q = tt_permute(f, 3, std::span<const int>(perm, 3));
  for (int m = 0; m < 8; ++m) {
    int src = 0;
    for (int i = 0; i < 3; ++i) {
      if ((m >> i) & 1) {
        src |= 1 << perm[i];
      }
    }
    EXPECT_EQ((q >> m) & 1, (f >> src) & 1);
  }
}

TEST(CubeTest, LiteralsAndFunction) {
  cube c;
  c.pos_mask = 0b001;  // x0
  c.neg_mask = 0b100;  // !x2
  EXPECT_EQ(c.num_literals(), 2);
  const tt6 f = cube_function(c, 3);
  EXPECT_EQ(f, tt_project(0) & ~tt_project(2) & tt_mask(3));
}

TEST(CubeTest, EmptyCubeIsTautology) {
  const cube c;
  EXPECT_EQ(cube_function(c, 3), tt_mask(3));
}

TEST(IsopTest, ConstantFunctions) {
  EXPECT_TRUE(isop(0, 3).empty());
  const auto taut = isop(tt_mask(3), 3);
  ASSERT_EQ(taut.size(), 1u);
  EXPECT_EQ(taut[0].num_literals(), 0);
}

TEST(IsopTest, SingleVariable) {
  const auto cubes = isop(tt_project(1) & tt_mask(3), 3);
  ASSERT_EQ(cubes.size(), 1u);
  EXPECT_EQ(cubes[0].pos_mask, 0b010u);
  EXPECT_EQ(cubes[0].neg_mask, 0u);
}

TEST(IsopTest, ExhaustiveThreeVariables) {
  // Every 3-variable function must be covered exactly.
  for (tt6 f = 0; f < 256; ++f) {
    const auto cubes = isop(f, 3);
    EXPECT_EQ(sop_function(cubes, 3), f) << "function " << f;
  }
}

class IsopRandomTest : public ::testing::TestWithParam<int> {};

TEST_P(IsopRandomTest, CoverEqualsFunction) {
  rng r(static_cast<std::uint64_t>(GetParam()));
  for (int vars = 4; vars <= 6; ++vars) {
    const tt6 f = r.next() & tt_mask(vars);
    const auto cubes = isop(f, vars);
    EXPECT_EQ(sop_function(cubes, vars), f)
        << "vars " << vars << " seed " << GetParam();
    // Irredundancy: dropping any cube must lose coverage.
    for (std::size_t drop = 0; drop < cubes.size(); ++drop) {
      std::vector<cube> reduced = cubes;
      reduced.erase(reduced.begin() + static_cast<std::ptrdiff_t>(drop));
      EXPECT_NE(sop_function(reduced, vars), f)
          << "cube " << drop << " is redundant";
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, IsopRandomTest, ::testing::Range(0, 25));

}  // namespace
}  // namespace isdc::aig
