// Shared helpers for the test suite: random graph/AIG generation and
// simulation-based equivalence checking.
#ifndef ISDC_TESTS_TEST_UTIL_H_
#define ISDC_TESTS_TEST_UTIL_H_

#include <vector>

#include "aig/aig.h"
#include "aig/simulate.h"
#include "ir/builder.h"
#include "ir/evaluate.h"
#include "support/rng.h"

namespace isdc::testing {

/// Random feed-forward IR graph over arithmetic/logic ops; all widths
/// equal, every sink becomes an output.
inline ir::graph random_graph(rng& r, int num_inputs, int num_ops,
                              std::uint32_t width) {
  ir::graph g("random");
  ir::builder b(g);
  std::vector<ir::node_id> pool;
  for (int i = 0; i < num_inputs; ++i) {
    pool.push_back(b.input(width, "i" + std::to_string(i)));
  }
  for (int i = 0; i < num_ops; ++i) {
    const ir::node_id x = pool[r.next_below(pool.size())];
    const ir::node_id y = pool[r.next_below(pool.size())];
    ir::node_id out;
    switch (r.next_below(6)) {
      case 0: out = b.add(x, y); break;
      case 1: out = b.sub(x, y); break;
      case 2: out = b.bxor(x, y); break;
      case 3: out = b.band(x, y); break;
      case 4: out = b.bor(x, y); break;
      default:
        out = b.rotri(x, static_cast<std::uint32_t>(r.next_below(width)));
        break;
    }
    pool.push_back(out);
  }
  // Every node without users becomes an output.
  for (ir::node_id id = 0; id < g.num_nodes(); ++id) {
    if (g.users(id).empty() && g.at(id).op != ir::opcode::constant) {
      g.mark_output(id);
    }
  }
  return g;
}

/// Random AIG with `num_pis` inputs and `num_ands` AND attempts.
inline aig::aig random_aig(rng& r, int num_pis, int num_ands) {
  aig::aig g;
  std::vector<aig::literal> pool;
  for (int i = 0; i < num_pis; ++i) {
    pool.push_back(aig::make_literal(g.add_pi()));
  }
  for (int i = 0; i < num_ands; ++i) {
    aig::literal a = pool[r.next_below(pool.size())];
    aig::literal b = pool[r.next_below(pool.size())];
    if (r.next_bool(0.4)) {
      a = aig::lit_not(a);
    }
    if (r.next_bool(0.4)) {
      b = aig::lit_not(b);
    }
    pool.push_back(g.create_and(a, b));
  }
  // A handful of POs over the most recent signals.
  const std::size_t num_pos = std::min<std::size_t>(4, pool.size());
  for (std::size_t i = 0; i < num_pos; ++i) {
    aig::literal po = pool[pool.size() - 1 - i];
    if (r.next_bool(0.3)) {
      po = aig::lit_not(po);
    }
    g.add_po(po);
  }
  return g;
}

/// Checks PO-for-PO equivalence of two AIGs with `rounds` x 64 random
/// patterns. PIs must correspond by index.
inline bool simulation_equivalent(const aig::aig& a, const aig::aig& b,
                                  rng& r, int rounds = 8) {
  if (a.num_pis() != b.num_pis() || a.pos().size() != b.pos().size()) {
    return false;
  }
  for (int round = 0; round < rounds; ++round) {
    std::vector<std::uint64_t> patterns(a.num_pis());
    for (auto& p : patterns) {
      p = r.next();
    }
    if (aig::simulate_outputs(a, patterns) !=
        aig::simulate_outputs(b, patterns)) {
      return false;
    }
  }
  return true;
}

/// Random input values for an IR graph.
inline std::vector<std::uint64_t> random_inputs(const ir::graph& g, rng& r) {
  std::vector<std::uint64_t> values;
  values.reserve(g.inputs().size());
  for (ir::node_id in : g.inputs()) {
    values.push_back(r.next() & ir::width_mask(g.at(in).width));
  }
  return values;
}

}  // namespace isdc::testing

#endif  // ISDC_TESTS_TEST_UTIL_H_
