#include <gtest/gtest.h>

#include "aig/cuts.h"
#include "aig/simulate.h"
#include "support/rng.h"
#include "test_util.h"

namespace isdc::aig {
namespace {

cut make_cut(std::initializer_list<node_index> leaves) {
  cut c;
  for (node_index l : leaves) {
    c.leaves[c.size++] = l;
  }
  return c;
}

TEST(CutTest, MergeDisjoint) {
  const cut a = make_cut({1, 3});
  const cut b = make_cut({2, 5});
  cut out;
  ASSERT_TRUE(merge_cuts(a, b, 4, out));
  EXPECT_EQ(out.size, 4);
  EXPECT_EQ(out.leaves[0], 1u);
  EXPECT_EQ(out.leaves[3], 5u);
}

TEST(CutTest, MergeOverlapping) {
  const cut a = make_cut({1, 3, 7});
  const cut b = make_cut({3, 7, 9});
  cut out;
  ASSERT_TRUE(merge_cuts(a, b, 4, out));
  EXPECT_EQ(out.size, 4);
}

TEST(CutTest, MergeRejectsOverflow) {
  const cut a = make_cut({1, 2, 3});
  const cut b = make_cut({4, 5});
  cut out;
  EXPECT_FALSE(merge_cuts(a, b, 4, out));
}

TEST(CutTest, Dominance) {
  const cut small = make_cut({2, 4});
  const cut big = make_cut({2, 4, 6});
  EXPECT_TRUE(small.dominates(big));
  EXPECT_FALSE(big.dominates(small));
  EXPECT_TRUE(small.dominates(small));
}

TEST(CutEnumerationTest, SmallNetwork) {
  aig g;
  const literal a = make_literal(g.add_pi());
  const literal b = make_literal(g.add_pi());
  const literal c = make_literal(g.add_pi());
  const literal ab = g.create_and(a, b);
  const literal abc = g.create_and(ab, c);
  g.add_po(abc);
  const auto cuts = enumerate_cuts(g);
  const auto& root_cuts = cuts[lit_node(abc)];
  // Must contain {ab, c}, {a, b, c} and the trivial cut.
  bool has_fanin_cut = false;
  bool has_leaf_cut = false;
  for (const cut& ct : root_cuts) {
    if (ct.size == 2 && ct.contains(lit_node(ab)) &&
        ct.contains(lit_node(c))) {
      has_fanin_cut = true;
    }
    if (ct.size == 3 && ct.contains(lit_node(a)) &&
        ct.contains(lit_node(b)) && ct.contains(lit_node(c))) {
      has_leaf_cut = true;
    }
  }
  EXPECT_TRUE(has_fanin_cut);
  EXPECT_TRUE(has_leaf_cut);
  EXPECT_EQ(root_cuts.back().size, 1);  // trivial last
  EXPECT_EQ(root_cuts.back().leaves[0], lit_node(abc));
}

TEST(CutEnumerationTest, RespectsLimits) {
  rng r(11);
  const aig g = isdc::testing::random_aig(r, 6, 80);
  cut_enumeration_options opts;
  opts.k = 4;
  opts.max_cuts = 5;
  const auto cuts = enumerate_cuts(g, opts);
  for (node_index n = 0; n < g.num_nodes(); ++n) {
    EXPECT_LE(cuts[n].size(), 6u);  // max_cuts + trivial
    for (const cut& c : cuts[n]) {
      EXPECT_LE(static_cast<int>(c.size), opts.k);
      for (std::uint8_t i = 1; i < c.size; ++i) {
        EXPECT_LT(c.leaves[i - 1], c.leaves[i]) << "leaves must be sorted";
      }
    }
  }
}

/// Property: the cut function evaluated on simulated leaf values equals the
/// simulated root value, for every enumerated cut of every node.
class CutFunctionTest : public ::testing::TestWithParam<int> {};

TEST_P(CutFunctionTest, FunctionMatchesSimulation) {
  rng r(static_cast<std::uint64_t>(GetParam()) * 13 + 1);
  const aig g = isdc::testing::random_aig(r, 5, 40);
  const auto cuts = enumerate_cuts(g);

  std::vector<std::uint64_t> patterns(g.num_pis());
  for (auto& p : patterns) {
    p = r.next();
  }
  const auto words = simulate(g, patterns);

  for (node_index n = 0; n < g.num_nodes(); ++n) {
    if (!g.is_and(n)) {
      continue;
    }
    for (const cut& c : cuts[n]) {
      if (c.size == 1 && c.leaves[0] == n) {
        continue;
      }
      const tt6 f = cut_function(g, n, c);
      // Evaluate f at the simulated leaf bits, for each of 64 patterns.
      for (int bit = 0; bit < 64; ++bit) {
        int minterm = 0;
        for (std::uint8_t i = 0; i < c.size; ++i) {
          if ((words[c.leaves[i]] >> bit) & 1) {
            minterm |= 1 << i;
          }
        }
        const std::uint64_t expected = (words[n] >> bit) & 1;
        EXPECT_EQ((f >> minterm) & 1, expected)
            << "node " << n << " cut size " << static_cast<int>(c.size);
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CutFunctionTest, ::testing::Range(0, 10));

}  // namespace
}  // namespace isdc::aig
