// Chaos suite: the whole pipeline under deterministic, seeded fault
// injection (support/failpoint.h). The capstone soak drives the full
// 17-workload fleet through a real subprocess worker pool while faults
// fire on both sides of the pipe — worker crashes, client read timeouts,
// torn request writes — and asserts the feedback loop's output is
// bit-identical to a fault-free run: every injected fault here is
// *recoverable* (crash/timeout → kill + respawn + retry on a fresh
// worker), so resilience must cost nothing in answer quality. The rest of
// the suite covers the crash-safety of cache persistence (torn saves are
// salvaged + quarantined, failed saves never clobber the previous file)
// and cooperative cancellation (per-run wall budgets, per-job fleet
// budgets, batch cancel tokens, injected job faults never sink a batch).
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <cstdio>
#include <optional>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "backend/subprocess_tool.h"
#include "core/downstream.h"
#include "engine/fleet.h"
#include "ir/verify.h"
#include "sched/validate.h"
#include "support/cancellation.h"
#include "support/failpoint.h"
#include "workloads/registry.h"

namespace isdc {
namespace {

std::string worker_path() { return ISDC_DELAY_WORKER_PATH; }

/// Thread-safe constant-delay downstream stub that counts calls.
class counting_downstream final : public core::downstream_tool {
public:
  explicit counting_downstream(double delay) : delay_(delay) {}
  double subgraph_delay_ps(const ir::graph&) const override {
    ++calls_;
    return delay_;
  }
  std::string name() const override { return "counting"; }
  int calls() const { return calls_.load(); }

private:
  double delay_;
  mutable std::atomic<int> calls_{0};
};

core::isdc_options soak_options() {
  core::isdc_options opts;
  opts.max_iterations = 2;
  opts.subgraphs_per_iteration = 4;
  opts.num_threads = 2;
  return opts;
}

/// Everything the feedback loop computed, compared bit-identically
/// (evaluation-sourcing cache counters excluded — retries and coalescing
/// may re-source a measurement, with identical values).
void expect_same_schedule_trajectory(const core::isdc_result& a,
                                     const core::isdc_result& b,
                                     const std::string& label) {
  EXPECT_EQ(a.initial, b.initial) << label;
  EXPECT_EQ(a.final_schedule, b.final_schedule) << label;
  EXPECT_EQ(a.iterations, b.iterations) << label;
  EXPECT_EQ(a.delays, b.delays) << label;
  EXPECT_EQ(a.naive_delays, b.naive_delays) << label;
  ASSERT_EQ(a.history.size(), b.history.size()) << label;
  for (std::size_t i = 0; i < a.history.size(); ++i) {
    const core::iteration_record& ra = a.history[i];
    const core::iteration_record& rb = b.history[i];
    EXPECT_EQ(ra.register_bits, rb.register_bits) << label << " record " << i;
    EXPECT_EQ(ra.num_stages, rb.num_stages) << label << " record " << i;
    EXPECT_DOUBLE_EQ(ra.estimated_delay_ps, rb.estimated_delay_ps)
        << label << " record " << i;
    EXPECT_EQ(ra.subgraphs_evaluated, rb.subgraphs_evaluated)
        << label << " record " << i;
  }
}

/// Full invariant sweep of one soak result: the schedules are legal
/// against their matrices, the final matrix is structurally consistent
/// with the graph, and feedback only ever lowered entries.
void expect_validates_clean(const ir::graph& g, const core::isdc_result& r,
                            double clock_period_ps,
                            const std::string& label) {
  EXPECT_EQ(sched::validate_schedule(g, r.initial, r.naive_delays,
                                     clock_period_ps),
            std::vector<std::string>{})
      << label << " initial";
  EXPECT_EQ(sched::validate_schedule(g, r.final_schedule, r.delays,
                                     clock_period_ps),
            std::vector<std::string>{})
      << label << " final";
  EXPECT_EQ(sched::validate_matrix(g, r.delays), std::vector<std::string>{})
      << label;
  EXPECT_EQ(sched::validate_matrix_monotonic(r.naive_delays, r.delays),
            std::vector<std::string>{})
      << label;
}

/// One fleet pass over all 17 workloads through a subprocess pool running
/// `command`. The returned report aliases nothing: safe after teardown.
engine::fleet_report run_fleet_over_pool(
    const backend::subprocess_tool& pool) {
  const std::vector<workloads::workload_spec>& specs =
      workloads::all_workloads();
  std::vector<ir::graph> graphs;
  std::vector<engine::fleet_job> jobs;
  graphs.reserve(specs.size());
  for (const workloads::workload_spec& spec : specs) {
    graphs.push_back(spec.build());
    EXPECT_EQ(ir::verify(graphs.back()), "") << spec.name;
    jobs.push_back({.name = spec.name,
                    .graph = &graphs.back(),
                    .clock_period_ps = spec.clock_period_ps});
  }
  engine::fleet_options fopts;
  fopts.shards = 4;
  fopts.isdc = soak_options();
  engine::fleet f(fopts);
  engine::fleet_report report = f.run(jobs, pool);
  EXPECT_EQ(f.cache().num_in_flight(), 0u);
  return report;
}

// The tentpole assertion: a seeded storm of recoverable faults on both
// sides of the worker pipe changes *nothing* about the schedules. Crashes
// and timeouts are retried on fresh workers; the worker's answers are
// deterministic; so the chaos batch must replay the clean batch exactly —
// while the pool's counters account for every injected fault (each failed
// attempt is exactly one restart and one retry) and no ticket leaks.
TEST(ChaosSoakTest, RecoverableFaultsPreserveEveryScheduleBitExactly) {
  backend::subprocess_options clean;
  clean.command = worker_path() + " --tool=aig-depth";
  clean.workers = 2;
  clean.max_attempts = 6;
  clean.backoff_ms = 1.0;
  clean.backoff_max_ms = 8.0;

  backend::subprocess_options chaotic = clean;
  // Worker side: ~8% of evals die mid-request (seeded inside the worker).
  chaotic.command = worker_path() +
      " --tool=aig-depth --failpoints=seed=11;worker.eval=fail@p=0.08";

  backend::subprocess_tool clean_pool(clean);
  const engine::fleet_report reference = run_fleet_over_pool(clean_pool);
  ASSERT_EQ(reference.results.size(), workloads::all_workloads().size());
  const std::vector<workloads::workload_spec>& specs =
      workloads::all_workloads();
  for (std::size_t i = 0; i < reference.results.size(); ++i) {
    const engine::fleet_result& r = reference.results[i];
    ASSERT_EQ(r.error, nullptr) << r.name;
    ASSERT_EQ(r.name, specs[i].name);
    // Not just bit-stable (checked below) but *right*: every soak
    // schedule passes the full invariant validator.
    const ir::graph g = specs[i].build();
    expect_validates_clean(g, r.result, specs[i].clock_period_ps, r.name);
  }

  backend::subprocess_tool chaos_pool(chaotic);
  engine::fleet_report chaos;
  std::uint64_t client_fires = 0;
  {
    // Client side: injected read timeouts (return instantly — no waiting
    // out real deadlines) and torn request writes. Both are recoverable:
    // kill + respawn + retry. Garbage/protocol faults are deliberately
    // absent — those are *deterministic* failures and are not retried.
    failpoint::scoped_arm storm(
        "seed=5;backend.subprocess.read=timeout@p=0.05;"
        "backend.subprocess.write=partial@p=0.03");
    chaos = run_fleet_over_pool(chaos_pool);
    client_fires = failpoint::total_fires();
  }

  ASSERT_EQ(chaos.results.size(), reference.results.size());
  for (std::size_t i = 0; i < chaos.results.size(); ++i) {
    ASSERT_EQ(chaos.results[i].error, nullptr) << chaos.results[i].name;
    EXPECT_FALSE(chaos.results[i].cancelled) << chaos.results[i].name;
    expect_same_schedule_trajectory(chaos.results[i].result,
                                    reference.results[i].result,
                                    chaos.results[i].name);
  }

  // The storm actually happened...
  EXPECT_GT(client_fires, 0u);
  // ...and the counters add up: every failed attempt (a crash — worker
  // death or torn write — or a timeout) was exactly one kill+respawn and
  // one retry on the fresh worker; nothing babbled, nothing ran out of
  // attempts (a job error would have tripped above).
  const backend::subprocess_tool::counters stats = chaos_pool.stats();
  EXPECT_GT(stats.crashes + stats.timeouts, 0u);
  EXPECT_EQ(stats.restarts, stats.crashes + stats.timeouts);
  EXPECT_EQ(stats.retries, stats.crashes + stats.timeouts);
  EXPECT_EQ(stats.protocol_errors, 0u);
  // The pool ends the soak fully healed: every slot alive.
  EXPECT_EQ(chaos_pool.heal(), chaotic.workers);
  EXPECT_EQ(chaos_pool.live_workers(), chaotic.workers);
}

TEST(ChaosCacheTest, TornSaveIsSalvagedAndQuarantinedOnLoad) {
  engine::evaluation_cache cache;
  for (std::uint64_t k = 1; k <= 6; ++k) {
    cache.store(k, 10.0 * static_cast<double>(k));
  }
  const std::string path =
      ::testing::TempDir() + "isdc_chaos_torn_cache.bin";
  std::remove(path.c_str());
  std::remove((path + ".corrupt").c_str());
  {
    // A torn save: the failpoint truncates the byte stream mid-record
    // before it hits the disk, simulating a crash between write and
    // fsync that still left a renamed file behind.
    failpoint::scoped_arm torn("engine.cache.save=partial@n=1");
    ASSERT_TRUE(cache.save(path, 7));
  }

  engine::evaluation_cache loaded;
  const engine::evaluation_cache::load_report report =
      loaded.load_checked(path, 7);
  EXPECT_FALSE(report.ok);
  EXPECT_TRUE(report.salvaged);
  EXPECT_EQ(report.records, 3u);  // half of six records survived whole
  EXPECT_EQ(report.quarantined_to, path + ".corrupt");
  // Records are saved sorted by key, so the salvaged prefix is exactly
  // the three smallest keys, values intact.
  for (std::uint64_t k = 1; k <= 3; ++k) {
    const std::optional<double> d = loaded.lookup(k);
    ASSERT_TRUE(d.has_value()) << k;
    EXPECT_DOUBLE_EQ(*d, 10.0 * static_cast<double>(k)) << k;
  }
  EXPECT_FALSE(loaded.lookup(4).has_value());
  // The torn file was moved aside: the next save starts clean and the
  // evidence survives for inspection.
  std::FILE* quarantined = std::fopen((path + ".corrupt").c_str(), "rb");
  EXPECT_NE(quarantined, nullptr);
  if (quarantined != nullptr) {
    std::fclose(quarantined);
  }
  std::FILE* original = std::fopen(path.c_str(), "rb");
  EXPECT_EQ(original, nullptr);
  if (original != nullptr) {
    std::fclose(original);
  }
  std::remove((path + ".corrupt").c_str());
}

TEST(ChaosCacheTest, FailedSaveLeavesPreviousFileIntact) {
  const std::string path =
      ::testing::TempDir() + "isdc_chaos_failed_save.bin";
  std::remove(path.c_str());

  engine::evaluation_cache first;
  first.store(42, 1234.5);
  ASSERT_TRUE(first.save(path, 7));

  engine::evaluation_cache second;
  second.store(42, 9999.0);
  second.store(43, 8888.0);
  {
    failpoint::scoped_arm fault("engine.cache.save=fail@n=1");
    EXPECT_FALSE(second.save(path, 7));
  }

  // The failed save never touched the previous file.
  engine::evaluation_cache loaded;
  const engine::evaluation_cache::load_report report =
      loaded.load_checked(path, 7);
  EXPECT_TRUE(report.ok);
  EXPECT_EQ(report.records, 1u);
  const std::optional<double> d = loaded.lookup(42);
  ASSERT_TRUE(d.has_value());
  EXPECT_DOUBLE_EQ(*d, 1234.5);
  std::remove(path.c_str());
}

TEST(ChaosBudgetTest, WallBudgetStopsARunAtAnIterationBoundary) {
  const workloads::workload_spec* spec = workloads::find_workload("rrot");
  ASSERT_NE(spec, nullptr);
  const ir::graph g = spec->build();

  counting_downstream base(900.0);
  core::latency_downstream slow(base, 25.0);  // 25 ms per measurement

  core::isdc_options opts = soak_options();
  opts.base.clock_period_ps = spec->clock_period_ps;
  opts.max_iterations = 50;
  opts.wall_budget_ms = 40.0;

  engine::engine e;
  const core::isdc_result r = e.run(g, slow, opts);
  EXPECT_TRUE(r.cancelled);
  EXPECT_LT(r.iterations, 50);
  // Budget expiry is a result, not an error: the best schedule so far is
  // still reported, history and all.
  EXPECT_FALSE(r.history.empty());
}

TEST(ChaosBudgetTest, PreCancelledTokenStopsBeforeTheFirstIteration) {
  const workloads::workload_spec* spec = workloads::find_workload("rrot");
  ASSERT_NE(spec, nullptr);
  const ir::graph g = spec->build();

  counting_downstream tool(900.0);
  core::isdc_options opts = soak_options();
  opts.base.clock_period_ps = spec->clock_period_ps;

  cancellation_token token = cancellation_token::make();
  token.request_cancel();
  engine::engine e;
  const core::isdc_result r =
      e.run(g, tool, opts, nullptr, nullptr, nullptr, &token);
  EXPECT_TRUE(r.cancelled);
  EXPECT_EQ(r.iterations, 0);
}

TEST(ChaosFleetTest, InjectedJobFaultNeverSinksTheBatch) {
  const std::vector<std::string> names = {"rrot", "crc32", "hsv2rgb"};
  std::vector<ir::graph> graphs;
  std::vector<engine::fleet_job> jobs;
  graphs.reserve(names.size());
  for (const std::string& name : names) {
    const workloads::workload_spec* spec = workloads::find_workload(name);
    ASSERT_NE(spec, nullptr);
    graphs.push_back(spec->build());
    jobs.push_back({.name = name,
                    .graph = &graphs.back(),
                    .clock_period_ps = spec->clock_period_ps});
  }

  counting_downstream tool(900.0);
  engine::fleet_options fopts;
  fopts.shards = 1;  // sequential: the Nth job is the Nth site call
  fopts.isdc = soak_options();
  engine::fleet f(fopts);

  failpoint::scoped_arm fault("engine.fleet.job=fail@n=2");
  const engine::fleet_report report = f.run(jobs, tool);
  ASSERT_EQ(report.results.size(), jobs.size());
  EXPECT_EQ(report.results[0].error, nullptr);
  EXPECT_NE(report.results[1].error, nullptr);
  EXPECT_EQ(report.results[2].error, nullptr);
  EXPECT_GT(report.results[0].result.iterations, 0);
  EXPECT_GT(report.results[2].result.iterations, 0);
  EXPECT_EQ(f.cache().num_in_flight(), 0u);
}

TEST(ChaosFleetTest, JobBudgetCutsJobsWithoutErrors) {
  const std::vector<std::string> names = {"rrot", "crc32"};
  std::vector<ir::graph> graphs;
  std::vector<engine::fleet_job> jobs;
  graphs.reserve(names.size());
  for (const std::string& name : names) {
    const workloads::workload_spec* spec = workloads::find_workload(name);
    ASSERT_NE(spec, nullptr);
    graphs.push_back(spec->build());
    jobs.push_back({.name = name,
                    .graph = &graphs.back(),
                    .clock_period_ps = spec->clock_period_ps});
  }

  counting_downstream base(900.0);
  core::latency_downstream slow(base, 25.0);
  engine::fleet_options fopts;
  fopts.shards = 2;
  fopts.isdc = soak_options();
  fopts.isdc.max_iterations = 50;
  fopts.job_budget_ms = 40.0;
  engine::fleet f(fopts);

  const engine::fleet_report report = f.run(jobs, slow);
  ASSERT_EQ(report.results.size(), jobs.size());
  for (const engine::fleet_result& r : report.results) {
    EXPECT_EQ(r.error, nullptr) << r.name;
    EXPECT_TRUE(r.cancelled) << r.name;
    EXPECT_LT(r.result.iterations, 50) << r.name;
  }
}

TEST(ChaosFleetTest, BatchCancelTokenStopsEveryJob) {
  const std::vector<std::string> names = {"rrot", "crc32"};
  std::vector<ir::graph> graphs;
  std::vector<engine::fleet_job> jobs;
  graphs.reserve(names.size());
  for (const std::string& name : names) {
    const workloads::workload_spec* spec = workloads::find_workload(name);
    ASSERT_NE(spec, nullptr);
    graphs.push_back(spec->build());
    jobs.push_back({.name = name,
                    .graph = &graphs.back(),
                    .clock_period_ps = spec->clock_period_ps});
  }

  counting_downstream tool(900.0);
  engine::fleet_options fopts;
  fopts.shards = 2;
  fopts.isdc = soak_options();
  engine::fleet f(fopts);

  cancellation_token token = cancellation_token::make();
  token.request_cancel();
  const engine::fleet_report report = f.run(jobs, tool, &token);
  ASSERT_EQ(report.results.size(), jobs.size());
  for (const engine::fleet_result& r : report.results) {
    EXPECT_EQ(r.error, nullptr) << r.name;
    EXPECT_TRUE(r.cancelled) << r.name;
    EXPECT_EQ(r.result.iterations, 0) << r.name;
  }
}

}  // namespace
}  // namespace isdc
