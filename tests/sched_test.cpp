#include <memory>
#include <utility>

#include <gtest/gtest.h>

#include "core/downstream.h"
#include "engine/engine.h"
#include "engine/stages.h"
#include "ir/builder.h"
#include "sched/delay_matrix.h"
#include "sched/metrics.h"
#include "sched/schedule.h"
#include "sched/scheduler_instance.h"
#include "sched/sdc_scheduler.h"
#include "sched/validate.h"
#include "support/check.h"
#include "support/rng.h"
#include "synth/characterizer.h"
#include "test_util.h"
#include "workloads/registry.h"

namespace isdc::sched {
namespace {

/// A delay function assigning `unit` ps to every non-input node.
delay_matrix uniform_matrix(const ir::graph& g, double unit) {
  return delay_matrix::initial(g, [&g, unit](ir::node_id v) {
    const ir::opcode op = g.at(v).op;
    return op == ir::opcode::input || op == ir::opcode::constant ? 0.0
                                                                 : unit;
  });
}

TEST(DelayMatrixTest, InitialCriticalPaths) {
  // x -> a -> b, y -> b. Delays: a = 3, b = 5.
  ir::graph g;
  ir::builder bl(g);
  const ir::node_id x = bl.input(8, "x");
  const ir::node_id y = bl.input(8, "y");
  const ir::node_id a = bl.bnot(x);
  const ir::node_id b = bl.add(a, y);
  bl.output(b);
  const delay_matrix d = delay_matrix::initial(g, [&](ir::node_id v) {
    if (v == a) return 3.0;
    if (v == b) return 5.0;
    return 0.0;
  });
  EXPECT_FLOAT_EQ(d.self(a), 3.0f);
  EXPECT_FLOAT_EQ(d.get(a, b), 8.0f);   // a + b
  EXPECT_FLOAT_EQ(d.get(x, b), 8.0f);   // through a
  EXPECT_FLOAT_EQ(d.get(y, b), 5.0f);   // direct
  EXPECT_EQ(d.get(b, a), delay_matrix::not_connected);
  EXPECT_EQ(d.get(x, y), delay_matrix::not_connected);
}

TEST(DelayMatrixTest, PicksCriticalOfTwoPaths) {
  // Diamond: x -> {p (2), q (7)} -> r (1). ccp(x, r) = 8.
  ir::graph g;
  ir::builder bl(g);
  const ir::node_id x = bl.input(8, "x");
  const ir::node_id p = bl.bnot(x);
  const ir::node_id q = bl.neg(x);
  const ir::node_id r = bl.add(p, q);
  bl.output(r);
  const delay_matrix d = delay_matrix::initial(g, [&](ir::node_id v) {
    if (v == p) return 2.0;
    if (v == q) return 7.0;
    if (v == r) return 1.0;
    return 0.0;
  });
  EXPECT_FLOAT_EQ(d.get(x, r), 8.0f);
}

TEST(SchedulerTest, ChainSplitsByClockPeriod) {
  // 6 ops of 400 ps each, clock 1000 ps: at most 2 per stage -> 3 stages.
  ir::graph g;
  ir::builder bl(g);
  ir::node_id v = bl.input(8, "x");
  for (int i = 0; i < 6; ++i) {
    v = bl.bnot(v);
  }
  bl.output(v);
  const delay_matrix d = uniform_matrix(g, 400.0);
  scheduler_options opts;
  opts.clock_period_ps = 1000.0;
  const schedule s = sdc_schedule(g, d, opts);
  EXPECT_EQ(s.num_stages(), 3);
  EXPECT_TRUE(validate_schedule(g, s, d, opts.clock_period_ps).empty());
}

TEST(SchedulerTest, SingleStageWhenEverythingFits) {
  ir::graph g;
  ir::builder bl(g);
  const ir::node_id x = bl.input(8, "x");
  bl.output(bl.add(x, bl.bnot(x)));
  const delay_matrix d = uniform_matrix(g, 100.0);
  const schedule s = sdc_schedule(g, d, {});
  EXPECT_EQ(s.num_stages(), 1);
  EXPECT_EQ(register_bits(g, s), 8);  // just the output register
}

TEST(SchedulerTest, InputsPinnedToStageZero) {
  ir::graph g;
  ir::builder bl(g);
  ir::node_id v = bl.input(8, "x");
  const ir::node_id y = bl.input(8, "y");
  for (int i = 0; i < 4; ++i) {
    v = bl.bnot(v);
  }
  bl.output(bl.add(v, y));
  const delay_matrix d = uniform_matrix(g, 600.0);
  scheduler_options opts;
  opts.clock_period_ps = 1300.0;
  const schedule s = sdc_schedule(g, d, opts);
  for (ir::node_id in : g.inputs()) {
    EXPECT_EQ(s.cycle[in], 0);
  }
  EXPECT_TRUE(validate_schedule(g, s, d, opts.clock_period_ps).empty());
}

TEST(SchedulerTest, ThrowsWhenOpSlowerThanClock) {
  ir::graph g;
  ir::builder bl(g);
  bl.output(bl.bnot(bl.input(8, "x")));
  const delay_matrix d = uniform_matrix(g, 3000.0);
  scheduler_options opts;
  opts.clock_period_ps = 2500.0;
  EXPECT_THROW(sdc_schedule(g, d, opts), check_error);
}

TEST(SchedulerTest, RegisterObjectivePrefersNarrowCrossings) {
  // wide (32b) and narrow (8b) values both feed the output stage; the
  // schedule should chain the wide producer into the consumer stage and
  // register the narrow one if anything.
  ir::graph g;
  ir::builder bl(g);
  const ir::node_id a = bl.input(32, "a");
  const ir::node_id b = bl.input(32, "b");
  // Deep narrow chain (must be split) and shallow wide op.
  ir::node_id narrow = bl.slice(bl.add(a, b), 0, 8);
  for (int i = 0; i < 5; ++i) {
    narrow = bl.bnot(narrow);
  }
  const ir::node_id wide = bl.add(a, b);
  const ir::node_id merged = bl.add(wide, bl.zext(narrow, 32));
  bl.output(merged);
  const delay_matrix d = delay_matrix::initial(g, [&g](ir::node_id v) {
    const ir::opcode op = g.at(v).op;
    if (op == ir::opcode::input || op == ir::opcode::constant ||
        op == ir::opcode::slice || op == ir::opcode::zext) {
      return 0.0;
    }
    return 500.0;
  });
  scheduler_options opts;
  opts.clock_period_ps = 1100.0;
  const schedule s = sdc_schedule(g, d, opts);
  EXPECT_TRUE(validate_schedule(g, s, d, opts.clock_period_ps).empty());
  // Registering the adder's single 32-bit result through the pipeline is
  // cheaper than piping both 32-bit operands to the last stage, so the LP
  // must place `wide` at stage 0, next to its operands.
  EXPECT_EQ(s.cycle[wide], 0);
  // And the solution must beat the naive alternative placement.
  schedule alternative = s;
  alternative.cycle[wide] = s.cycle[merged];
  EXPECT_LE(register_bits(g, s), register_bits(g, alternative));
}

TEST(SchedulerTest, FrontierAndAllPairsAgreeOnSmallGraphs) {
  rng r(404);
  for (int trial = 0; trial < 8; ++trial) {
    const ir::graph g = isdc::testing::random_graph(r, 3, 12, 8);
    const delay_matrix d = uniform_matrix(g, 700.0);
    scheduler_options frontier;
    frontier.clock_period_ps = 1500.0;
    frontier.timing = timing_mode::frontier;
    scheduler_options all_pairs = frontier;
    all_pairs.timing = timing_mode::all_pairs;
    const schedule sf = sdc_schedule(g, d, frontier);
    const schedule sa = sdc_schedule(g, d, all_pairs);
    // Both must be legal; the frontier relaxation can only do better or
    // equal on register bits (its feasible set is the true legal set).
    EXPECT_TRUE(validate_schedule(g, sf, d, 1500.0).empty());
    EXPECT_TRUE(validate_schedule(g, sa, d, 1500.0).empty());
    EXPECT_LE(register_bits(g, sf), register_bits(g, sa)) << "trial "
                                                          << trial;
  }
}

TEST(SchedulerTest, StatsReported) {
  ir::graph g;
  ir::builder bl(g);
  ir::node_id v = bl.input(8, "x");
  for (int i = 0; i < 6; ++i) {
    v = bl.bnot(v);
  }
  bl.output(v);
  const delay_matrix d = uniform_matrix(g, 400.0);
  scheduler_options opts;
  opts.clock_period_ps = 1000.0;
  scheduler_stats stats;
  sdc_schedule(g, d, opts, &stats);
  EXPECT_GT(stats.num_constraints, 0u);
  EXPECT_GT(stats.num_timing_constraints, 0u);
}

TEST(MetricsTest, RegisterBitsHandComputed) {
  // x(8) -> a(8) at stage 0; b(8) at stage 1 uses a and x; output b.
  ir::graph g;
  ir::builder bl(g);
  const ir::node_id x = bl.input(8, "x");
  const ir::node_id a = bl.bnot(x);
  const ir::node_id b = bl.add(a, x);
  bl.output(b);
  schedule s;
  s.cycle = {0, 0, 1};
  // x crosses 1 boundary (8), a crosses 1 (8), b is output at final stage
  // (+8 output register). Total 24.
  EXPECT_EQ(register_bits(g, s), 24);
  EXPECT_EQ(last_use_stage(g, s, x), 1);
  EXPECT_EQ(last_use_stage(g, s, b), 1);
}

TEST(MetricsTest, ConstantsAreFree) {
  ir::graph g;
  ir::builder bl(g);
  const ir::node_id x = bl.input(8, "x");
  const ir::node_id k = bl.constant(8, 7);
  const ir::node_id a = bl.add(x, k);
  bl.output(a);
  schedule s;
  s.cycle = {0, 0, 1};
  // x crosses one boundary (8) + output reg (8); the constant is free.
  EXPECT_EQ(register_bits(g, s), 16);
}

TEST(MetricsTest, EstimatedStageDelays) {
  ir::graph g;
  ir::builder bl(g);
  const ir::node_id x = bl.input(8, "x");
  const ir::node_id a = bl.bnot(x);
  const ir::node_id b = bl.bnot(a);
  const ir::node_id c = bl.bnot(b);
  bl.output(c);
  const delay_matrix d = uniform_matrix(g, 100.0);
  schedule s;
  s.cycle = {0, 0, 0, 1};
  const auto delays = estimated_stage_delays(g, s, d);
  ASSERT_EQ(delays.size(), 2u);
  EXPECT_DOUBLE_EQ(delays[0], 200.0);  // a -> b within stage 0
  EXPECT_DOUBLE_EQ(delays[1], 100.0);  // c alone
  EXPECT_DOUBLE_EQ(estimated_critical_delay(g, s, d), 200.0);
}

TEST(MetricsTest, SynthesizedStageDelayOfWiringIsZero) {
  ir::graph g;
  ir::builder bl(g);
  const ir::node_id x = bl.input(16, "x");
  bl.output(bl.rotri(x, 3));
  schedule s;
  s.cycle = {0, 0, 0};  // input, constant amount, rotr
  EXPECT_DOUBLE_EQ(synthesized_stage_delay(g, s, 0), 0.0);
}

TEST(ValidateTest, DetectsDependenceViolation) {
  ir::graph g;
  ir::builder bl(g);
  const ir::node_id x = bl.input(8, "x");
  const ir::node_id a = bl.bnot(x);
  bl.output(a);
  const delay_matrix d = uniform_matrix(g, 100.0);
  schedule s;
  s.cycle = {1, 0};  // input not at 0 AND operand after user
  const auto violations = validate_schedule(g, s, d, 1000.0);
  EXPECT_GE(violations.size(), 2u);
}

TEST(ValidateTest, DetectsTimingViolation) {
  ir::graph g;
  ir::builder bl(g);
  const ir::node_id x = bl.input(8, "x");
  const ir::node_id a = bl.bnot(x);
  const ir::node_id b = bl.bnot(a);
  bl.output(b);
  const delay_matrix d = uniform_matrix(g, 800.0);
  schedule s;
  s.cycle = {0, 0, 0};  // 1600 ps path in a 1000 ps stage
  // Two violating windows: a -> b and (through the zero-delay input) x -> b.
  const auto violations = validate_schedule(g, s, d, 1000.0);
  ASSERT_EQ(violations.size(), 2u);
  EXPECT_NE(violations[0].find("1600"), std::string::npos);
  EXPECT_NE(violations[1].find("1600"), std::string::npos);
}

TEST(DelayMatrixTest, ChangeLogTracksAndDeduplicates) {
  ir::graph g;
  ir::builder bl(g);
  const ir::node_id x = bl.input(8, "x");
  const ir::node_id a = bl.bnot(x);
  const ir::node_id b = bl.bnot(a);
  bl.output(b);
  delay_matrix d = uniform_matrix(g, 100.0);
  d.track_changes(true);
  EXPECT_TRUE(d.take_changed_pairs().empty());

  d.set(a, b, 150.0f);
  d.set(a, b, 150.0f);  // no-op: same value, not logged
  d.set(a, b, 140.0f);  // second change of the same pair: deduplicated
  d.set(x, b, 180.0f);
  const auto changed = d.take_changed_pairs();
  ASSERT_EQ(changed.size(), 2u);
  EXPECT_EQ(changed[0], std::make_pair(x, b));
  EXPECT_EQ(changed[1], std::make_pair(a, b));
  // The take resets the log.
  EXPECT_TRUE(d.take_changed_pairs().empty());
  d.set(a, b, 130.0f);
  EXPECT_EQ(d.take_changed_pairs().size(), 1u);
}

TEST(DelayMatrixTest, TrackingOnOffAndRetake) {
  ir::graph g;
  ir::builder bl(g);
  const ir::node_id x = bl.input(8, "x");
  const ir::node_id a = bl.bnot(x);
  const ir::node_id b = bl.bnot(a);
  bl.output(b);
  delay_matrix d = uniform_matrix(g, 100.0);
  EXPECT_FALSE(d.tracking_changes());

  d.set(a, b, 150.0f);  // off: not logged
  d.track_changes(true);
  EXPECT_TRUE(d.take_changed_pairs().empty());
  d.set(a, b, 140.0f);
  d.track_changes(false);
  d.set(x, b, 170.0f);  // off again: dropped, along with the pending log
  d.track_changes(true);
  EXPECT_TRUE(d.take_changed_pairs().empty());

  // Re-take: a taken pair logs again on the next change.
  d.set(a, b, 130.0f);
  auto changed = d.take_changed_pairs();
  ASSERT_EQ(changed.size(), 1u);
  EXPECT_EQ(changed[0], std::make_pair(a, b));
  d.set(a, b, 120.0f);
  changed = d.take_changed_pairs();
  ASSERT_EQ(changed.size(), 1u);
  EXPECT_EQ(changed[0], std::make_pair(a, b));
  EXPECT_TRUE(d.take_changed_pairs().empty());
}

TEST(DelayMatrixTest, RowSpansAliasTheMatrix) {
  ir::graph g;
  ir::builder bl(g);
  const ir::node_id x = bl.input(8, "x");
  const ir::node_id a = bl.bnot(x);
  const ir::node_id b = bl.bnot(a);
  bl.output(b);
  delay_matrix d = uniform_matrix(g, 100.0);
  ASSERT_EQ(d.row(a).size(), g.num_nodes());
  EXPECT_FLOAT_EQ(d.row(a)[b], d.get(a, b));
  EXPECT_FLOAT_EQ(d.row(a)[a], d.self(a));
  d.row_mut(a)[b] = 150.0f;  // in-place kernel-style write
  EXPECT_FLOAT_EQ(d.get(a, b), 150.0f);
}

TEST(DelayMatrixTest, SetRowDiffsWordsAndLogsOnce) {
  // A 70-node chain: each bitmap row spans two 64-bit words, so the diff
  // and the change log cross a word boundary.
  ir::graph g;
  ir::builder bl(g);
  ir::node_id v = bl.input(8, "x");
  for (int i = 0; i < 69; ++i) {
    v = bl.bnot(v);
  }
  bl.output(v);
  delay_matrix d = uniform_matrix(g, 100.0);
  ASSERT_EQ(d.words_per_row(), 2u);
  d.track_changes(true);

  std::vector<float> row(d.row(0).begin(), d.row(0).end());
  row[10] -= 25.0f;
  row[65] -= 50.0f;  // second word
  std::vector<delay_matrix::node_pair> changed;
  d.set_row(0, row, &changed);
  ASSERT_EQ(changed.size(), 2u);
  EXPECT_EQ(changed[0], std::make_pair(ir::node_id{0}, ir::node_id{10}));
  EXPECT_EQ(changed[1], std::make_pair(ir::node_id{0}, ir::node_id{65}));
  EXPECT_FLOAT_EQ(d.get(0, 10), row[10]);
  EXPECT_FLOAT_EQ(d.get(0, 65), row[65]);

  // Re-writing the identical row touches nothing.
  changed.clear();
  d.set_row(0, row, &changed);
  EXPECT_TRUE(changed.empty());

  // A second lowering of an already-logged cell reports through `changed`
  // but stays deduplicated in the log.
  row[10] -= 5.0f;
  d.set_row(0, row, &changed);
  ASSERT_EQ(changed.size(), 1u);
  const auto logged = d.take_changed_pairs();
  ASSERT_EQ(logged.size(), 2u);
  EXPECT_EQ(logged[0], std::make_pair(ir::node_id{0}, ir::node_id{10}));
  EXPECT_EQ(logged[1], std::make_pair(ir::node_id{0}, ir::node_id{65}));

  // Without tracking, set_row still reports via the out-vector.
  d.track_changes(false);
  changed.clear();
  row[20] -= 10.0f;
  d.set_row(0, row, &changed);
  ASSERT_EQ(changed.size(), 1u);
  EXPECT_EQ(changed[0], std::make_pair(ir::node_id{0}, ir::node_id{20}));
  EXPECT_FLOAT_EQ(d.get(0, 20), row[20]);

  // And the memcpy fast path (no tracking, no out-vector) just stores.
  row[30] -= 10.0f;
  d.set_row(0, row);
  EXPECT_FLOAT_EQ(d.get(0, 30), row[30]);
}

TEST(DelayMatrixTest, LogRowChangesMergesBitmapAndMasksTail) {
  ir::graph g;
  ir::builder bl(g);
  const ir::node_id x = bl.input(8, "x");
  const ir::node_id a = bl.bnot(x);
  const ir::node_id b = bl.bnot(a);
  bl.output(b);
  delay_matrix d = uniform_matrix(g, 100.0);
  ASSERT_EQ(d.words_per_row(), 1u);
  d.track_changes(true);

  // Kernel-style: mutate through row_mut, then report the bitmap — with
  // garbage bits past column n, which must be ignored.
  d.row_mut(a)[b] = 123.0f;
  std::uint64_t bits = (1ull << b) | (1ull << 5) | (1ull << 63);
  d.log_row_changes(a, {&bits, 1});
  // Logging the same bit again stays deduplicated.
  d.log_row_changes(a, {&bits, 1});
  const auto changed = d.take_changed_pairs();
  ASSERT_EQ(changed.size(), 1u);
  EXPECT_EQ(changed[0], std::make_pair(a, b));

  // Not tracking: log_row_changes is a no-op, not an error.
  d.track_changes(false);
  d.log_row_changes(a, {&bits, 1});
}

/// Lowers a few random connected entries, as ISDC feedback would.
void lower_random_entries(rng& r, const ir::graph& g, delay_matrix& d,
                          int count) {
  const auto n = g.num_nodes();
  for (int k = 0; k < count; ++k) {
    const ir::node_id u = static_cast<ir::node_id>(r.next_below(n));
    const ir::node_id v = static_cast<ir::node_id>(r.next_below(n));
    const float current = d.get(u, v);
    if (u >= v || current == delay_matrix::not_connected) {
      continue;
    }
    d.set(u, v, std::max(d.self(u), current * 0.7f));
  }
}

/// The incremental contract: resolving with only the changed pairs must
/// give bit-identical schedules to a from-scratch sdc_schedule on the same
/// matrix, in both timing modes, while actually re-solving warm.
TEST(SchedulerInstanceTest, WarmResolveMatchesFromScratch) {
  for (const timing_mode mode :
       {timing_mode::frontier, timing_mode::all_pairs}) {
    rng r(mode == timing_mode::frontier ? 71 : 72);
    for (int trial = 0; trial < 6; ++trial) {
      const ir::graph g = isdc::testing::random_graph(r, 3, 16, 8);
      delay_matrix d = uniform_matrix(g, 600.0);
      scheduler_options opts;
      opts.clock_period_ps = 1300.0;
      opts.timing = mode;

      scheduler_instance instance(g, opts);
      scheduler_stats stats;
      const schedule first = instance.solve(d, &stats);
      EXPECT_FALSE(stats.warm);
      EXPECT_EQ(first, sdc_schedule(g, d, opts));

      d.track_changes(true);
      for (int round = 0; round < 5; ++round) {
        lower_random_entries(r, g, d, 6);
        const auto changed = d.take_changed_pairs();
        const schedule incremental = instance.resolve(d, changed, &stats);
        EXPECT_TRUE(stats.warm);
        const schedule scratch = sdc_schedule(g, d, opts);
        EXPECT_EQ(incremental, scratch)
            << "mode " << static_cast<int>(mode) << " trial " << trial
            << " round " << round;
      }
      EXPECT_EQ(instance.solver_stats().cold_solves, 1u);
    }
  }
}

/// The seed's from-scratch resolve: rebuild the constraint system and
/// cold-solve every iteration, exactly what the engine did before the
/// instance-based resolve stage existed.
class scratch_resolve_stage final : public engine::stage {
public:
  std::string_view name() const override { return "resolve-scratch"; }
  bool run(engine::run_state& rs, engine::iteration_state&) override {
    rs.current = sdc_schedule(rs.g, rs.result.delays, rs.options.base);
    return true;
  }
};

/// End-to-end parity: a full ISDC run with the instance-based (warm,
/// incremental) resolve must produce schedules and history bit-identical
/// to the from-scratch path on registry workloads.
TEST(SchedulerInstanceTest, FullIsdcMatchesFromScratchOnRegistryWorkloads) {
  const synth::delay_model model{synth::synthesis_options{}};
  struct workload_case {
    const char* name;
    ir::graph g;
  };
  const workload_case cases[] = {
      {"rrot", workloads::build_rrot()},
      {"hsv2rgb", workloads::build_hsv2rgb()},
      {"binary_divide", workloads::build_binary_divide(8)},
      {"ml_datapath1", workloads::build_ml_datapath1()},
  };
  for (const workload_case& wc : cases) {
    core::isdc_options opts;
    opts.base.clock_period_ps = 2500.0;
    opts.max_iterations = 4;
    opts.subgraphs_per_iteration = 4;
    opts.num_threads = 2;
    const core::aig_depth_downstream tool(80.0);

    engine::engine incremental_engine;
    const core::isdc_result incremental =
        incremental_engine.run(wc.g, tool, opts, &model);

    auto pipeline = engine::engine::default_pipeline();
    pipeline.back() = std::make_unique<scratch_resolve_stage>();
    engine::engine scratch_engine(std::move(pipeline));
    const core::isdc_result scratch =
        scratch_engine.run(wc.g, tool, opts, &model);

    EXPECT_EQ(incremental.initial, scratch.initial) << wc.name;
    EXPECT_EQ(incremental.final_schedule, scratch.final_schedule) << wc.name;
    EXPECT_EQ(incremental.iterations, scratch.iterations) << wc.name;
    EXPECT_EQ(incremental.delays, scratch.delays) << wc.name;
    ASSERT_EQ(incremental.history.size(), scratch.history.size()) << wc.name;
    for (std::size_t i = 0; i < incremental.history.size(); ++i) {
      EXPECT_EQ(incremental.history[i].register_bits,
                scratch.history[i].register_bits)
          << wc.name << " iteration " << i;
      EXPECT_EQ(incremental.history[i].num_stages,
                scratch.history[i].num_stages)
          << wc.name << " iteration " << i;
      EXPECT_EQ(incremental.history[i].matrix_entries_lowered,
                scratch.history[i].matrix_entries_lowered)
          << wc.name << " iteration " << i;
    }
    // The incremental path must actually run warm: every post-baseline
    // iteration reuses the solver state.
    for (std::size_t i = 1; i < incremental.history.size(); ++i) {
      EXPECT_TRUE(incremental.history[i].warm_resolve)
          << wc.name << " iteration " << i;
    }
    EXPECT_FALSE(incremental.history[0].warm_resolve) << wc.name;
  }
}

/// Resolving with an empty change list must be a no-op re-solve.
TEST(SchedulerInstanceTest, NoChangesIsStable) {
  ir::graph g;
  ir::builder bl(g);
  ir::node_id v = bl.input(8, "x");
  for (int i = 0; i < 6; ++i) {
    v = bl.bnot(v);
  }
  bl.output(v);
  const delay_matrix d = uniform_matrix(g, 400.0);
  scheduler_options opts;
  opts.clock_period_ps = 1000.0;
  scheduler_instance instance(g, opts);
  const schedule first = instance.solve(d);
  scheduler_stats stats;
  const schedule again = instance.resolve(d, {}, &stats);
  EXPECT_EQ(first, again);
  EXPECT_TRUE(stats.warm);
  EXPECT_EQ(stats.constraints_reemitted, 0u);
}

TEST(ScheduleTest, StageQueriesAndEquality) {
  schedule s;
  s.cycle = {0, 1, 1, 2};
  EXPECT_EQ(s.num_stages(), 3);
  EXPECT_TRUE(s.same_stage(1, 2));
  EXPECT_FALSE(s.same_stage(0, 3));
  EXPECT_EQ(s.nodes_in_stage(1), (std::vector<ir::node_id>{1, 2}));
  schedule t = s;
  EXPECT_EQ(s, t);
}

}  // namespace
}  // namespace isdc::sched
