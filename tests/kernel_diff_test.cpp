// Differential tests for the locality-oriented reformulation kernels: the
// panel-blocked Floyd-Warshall and the row-major Alg. 2 must be
// bit-identical to the original scalar references — same matrix floats,
// same set of changed pairs (the fast kernels deduplicate; the references
// record every lowering), and the full ISDC loop must produce the same
// schedules whichever implementation the update stage runs.
#include <algorithm>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "core/delay_update.h"
#include "core/downstream.h"
#include "core/floyd_warshall.h"
#include "core/isdc_scheduler.h"
#include "core/reformulate.h"
#include "ir/builder.h"
#include "sched/delay_matrix.h"
#include "sched/metrics.h"
#include "support/rng.h"
#include "support/thread_pool.h"
#include "test_util.h"
#include "workloads/registry.h"

namespace isdc::core {
namespace {

using sched::delay_matrix;
using node_pair = delay_matrix::node_pair;

// The kernels now have parallel overloads; bare function names would be
// ambiguous as template arguments, so the serial forms get named wrappers.
const auto fw_serial = [](const ir::graph& g, delay_matrix& d) {
  return reformulate_floyd_warshall(g, d);
};
const auto alg2_serial = [](const ir::graph& g, delay_matrix& d) {
  return reformulate_alg2(g, d);
};

/// Varied (non-uniform) per-op delays so compositions exercise distinct
/// float values rather than multiples of one unit.
delay_matrix varied_matrix(const ir::graph& g) {
  return delay_matrix::initial(g, [&g](ir::node_id v) {
    const ir::opcode op = g.at(v).op;
    if (op == ir::opcode::input || op == ir::opcode::constant) {
      return 0.0;
    }
    return 90.0 + 17.0 * static_cast<double>(v % 7);
  });
}

/// Random feedback: lowers a few member-set cliques, as the ISDC loop's
/// Alg. 1 update would, to give the reformulation real work.
void apply_random_feedback(const ir::graph& g, delay_matrix& d, rng& r) {
  std::vector<evaluated_subgraph> evals;
  for (int e = 0; e < 4; ++e) {
    evaluated_subgraph ev;
    for (ir::node_id v = 0; v < g.num_nodes(); ++v) {
      if (r.next_bool(0.25)) {
        ev.members.push_back(v);
      }
    }
    ev.delay_ps = 60.0 + 35.0 * static_cast<double>(e);
    if (!ev.members.empty()) {
      evals.push_back(ev);
    }
  }
  update_delay_matrix(d, evals);
}

std::vector<node_pair> dedup(std::vector<node_pair> pairs) {
  std::sort(pairs.begin(), pairs.end());
  pairs.erase(std::unique(pairs.begin(), pairs.end()), pairs.end());
  return pairs;
}

/// Runs `fast` and `reference` on copies of `d` (both with tracking on) and
/// checks: identical matrices, identical deduplicated changed-pair sets
/// from both the return values and the change logs.
template <typename Fast, typename Reference>
void expect_kernels_match(const ir::graph& g, const delay_matrix& d,
                          Fast fast, Reference reference,
                          const char* context) {
  delay_matrix fast_d = d;
  delay_matrix ref_d = d;
  fast_d.track_changes(true);
  ref_d.track_changes(true);
  const std::vector<node_pair> fast_pairs = fast(g, fast_d);
  const std::vector<node_pair> ref_pairs = reference(g, ref_d);
  EXPECT_TRUE(fast_d == ref_d) << context;
  // The fast kernels return deduplicated sorted pairs; the references one
  // record per lowering. Same set after dedup.
  EXPECT_EQ(fast_pairs, dedup(fast_pairs)) << context;
  EXPECT_EQ(fast_pairs, dedup(ref_pairs)) << context;
  // The matrix's own change log agrees too (take_changed_pairs dedups).
  EXPECT_EQ(fast_d.take_changed_pairs(), ref_d.take_changed_pairs())
      << context;
}

TEST(KernelDiffTest, FloydWarshallMatchesReferenceOnSeededSweep) {
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    rng r(seed);
    const ir::graph g = isdc::testing::random_graph(r, 4, 60, 8);
    delay_matrix d = varied_matrix(g);
    apply_random_feedback(g, d, r);
    expect_kernels_match(g, d, fw_serial,
                         reformulate_floyd_warshall_reference,
                         ("random_graph seed " + std::to_string(seed)).c_str());
  }
}

TEST(KernelDiffTest, FloydWarshallMatchesReferenceOnRandomDags) {
  // Layered DAGs past one 64-column word, so the word-at-a-time
  // connectivity skipping crosses word boundaries.
  for (std::uint64_t seed = 10; seed <= 12; ++seed) {
    rng r(seed);
    workloads::random_dag_options opts;
    opts.layer_width = 24;
    const ir::graph g = workloads::build_random_dag(seed, 180, opts);
    delay_matrix d = varied_matrix(g);
    apply_random_feedback(g, d, r);
    expect_kernels_match(g, d, fw_serial,
                         reformulate_floyd_warshall_reference,
                         ("random_dag seed " + std::to_string(seed)).c_str());
  }
}

TEST(KernelDiffTest, Alg2MatchesReferenceOnSeededSweep) {
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    rng r(seed);
    const ir::graph g = isdc::testing::random_graph(r, 4, 120, 8);
    delay_matrix d = varied_matrix(g);
    apply_random_feedback(g, d, r);
    expect_kernels_match(g, d, alg2_serial, reformulate_alg2_reference,
                         ("random_graph seed " + std::to_string(seed)).c_str());
  }
}

TEST(KernelDiffTest, Alg2MatchesReferenceOnRandomDags) {
  for (std::uint64_t seed = 20; seed <= 22; ++seed) {
    rng r(seed);
    workloads::random_dag_options opts;
    opts.layer_width = 40;
    opts.fanin_window = 3;
    const ir::graph g = workloads::build_random_dag(seed, 400, opts);
    delay_matrix d = varied_matrix(g);
    apply_random_feedback(g, d, r);
    expect_kernels_match(g, d, alg2_serial, reformulate_alg2_reference,
                         ("random_dag seed " + std::to_string(seed)).c_str());
  }
}

TEST(KernelDiffTest, KernelsMatchOnHandBuiltFillIn) {
  // A chain with hand-lowered fill-in: entries strictly below every
  // shortest composition, entries exactly at the existing value (no-op
  // lowering), and a pair lowered twice. Exercises the "cur == composed"
  // and re-take edges the random sweep may miss.
  ir::graph g;
  ir::builder bl(g);
  const ir::node_id x = bl.input(8, "x");
  ir::node_id v = x;
  std::vector<ir::node_id> chain{x};
  for (int i = 0; i < 9; ++i) {
    v = bl.bnot(v);
    chain.push_back(v);
  }
  g.mark_output(v);
  delay_matrix base = varied_matrix(g);
  base.set(chain[1], chain[4], 50.0f);
  base.set(chain[2], chain[7], 75.0f);
  base.set(chain[2], chain[7], 60.0f);  // lowered twice
  base.set(chain[0], chain[3], base.get(chain[0], chain[3]));  // no-op
  expect_kernels_match(g, base, fw_serial,
                       reformulate_floyd_warshall_reference, "fill-in FW");
  expect_kernels_match(g, base, alg2_serial, reformulate_alg2_reference,
                       "fill-in Alg2");
}

TEST(KernelDiffTest, KernelsMatchWithoutTracking) {
  // Tracking off: kernels must not touch the (absent) log and still agree.
  rng r(33);
  const ir::graph g = isdc::testing::random_graph(r, 4, 80, 8);
  delay_matrix d = varied_matrix(g);
  apply_random_feedback(g, d, r);
  delay_matrix fw_fast = d, fw_ref = d, a2_fast = d, a2_ref = d;
  const auto fw_pairs = reformulate_floyd_warshall(g, fw_fast);
  const auto fw_ref_pairs = reformulate_floyd_warshall_reference(g, fw_ref);
  EXPECT_TRUE(fw_fast == fw_ref);
  EXPECT_EQ(fw_pairs, dedup(fw_ref_pairs));
  const auto a2_pairs = reformulate_alg2(g, a2_fast);
  const auto a2_ref_pairs = reformulate_alg2_reference(g, a2_ref);
  EXPECT_TRUE(a2_fast == a2_ref);
  EXPECT_EQ(a2_pairs, dedup(a2_ref_pairs));
}

TEST(KernelDiffTest, ParallelFloydWarshallBitExactAcrossThreadCounts) {
  // 1 thread (serial fallback), 2, and 7 — the odd width makes the panel
  // partition uneven, so chunk boundaries land mid-pivot-block.
  for (const std::size_t threads : {std::size_t{1}, std::size_t{2}, std::size_t{7}}) {
    thread_pool pool(threads);
    const auto fw_parallel = [&pool](const ir::graph& g, delay_matrix& d) {
      return reformulate_floyd_warshall(g, d, &pool);
    };
    for (std::uint64_t seed = 1; seed <= 4; ++seed) {
      rng r(seed);
      workloads::random_dag_options opts;
      opts.layer_width = 24;
      const ir::graph g = workloads::build_random_dag(seed, 200, opts);
      delay_matrix d = varied_matrix(g);
      apply_random_feedback(g, d, r);
      const std::string ctx = "fw parallel threads=" +
                              std::to_string(threads) + " seed " +
                              std::to_string(seed);
      expect_kernels_match(g, d, fw_parallel, fw_serial, ctx.c_str());
      expect_kernels_match(g, d, fw_parallel,
                           reformulate_floyd_warshall_reference, ctx.c_str());
    }
  }
}

TEST(KernelDiffTest, ParallelAlg2BitExactAcrossThreadCounts) {
  for (const std::size_t threads : {std::size_t{1}, std::size_t{2}, std::size_t{7}}) {
    thread_pool pool(threads);
    const auto alg2_parallel = [&pool](const ir::graph& g, delay_matrix& d) {
      return reformulate_alg2(g, d, &pool);
    };
    for (std::uint64_t seed = 20; seed <= 23; ++seed) {
      rng r(seed);
      workloads::random_dag_options opts;
      opts.layer_width = 40;
      opts.fanin_window = 3;
      const ir::graph g = workloads::build_random_dag(seed, 400, opts);
      delay_matrix d = varied_matrix(g);
      apply_random_feedback(g, d, r);
      const std::string ctx = "alg2 parallel threads=" +
                              std::to_string(threads) + " seed " +
                              std::to_string(seed);
      expect_kernels_match(g, d, alg2_parallel, alg2_serial, ctx.c_str());
      expect_kernels_match(g, d, alg2_parallel, reformulate_alg2_reference,
                           ctx.c_str());
    }
  }
}

TEST(KernelDiffTest, ParallelInitialMatrixBitExact) {
  for (const std::size_t threads : {std::size_t{2}, std::size_t{7}}) {
    thread_pool pool(threads);
    for (std::uint64_t seed = 5; seed <= 7; ++seed) {
      const ir::graph g = workloads::build_random_dag(seed, 300, {});
      const auto delay_fn = [&g](ir::node_id v) {
        const ir::opcode op = g.at(v).op;
        return (op == ir::opcode::input || op == ir::opcode::constant)
                   ? 0.0
                   : 90.0 + 17.0 * static_cast<double>(v % 7);
      };
      const delay_matrix serial = delay_matrix::initial(g, delay_fn);
      const delay_matrix parallel = delay_matrix::initial(g, delay_fn, &pool);
      EXPECT_TRUE(serial == parallel)
          << "initial threads=" << threads << " seed " << seed;
    }
  }
}

/// Full-loop parity: run_isdc with the fast kernel vs its reference on a
/// registry workload must visit identical schedules and matrices.
void expect_isdc_parity(const workloads::workload_spec& spec,
                        reformulation_mode fast, reformulation_mode ref) {
  const ir::graph g = spec.build();
  isdc_options opts;
  opts.base.clock_period_ps = spec.clock_period_ps;
  opts.max_iterations = 3;
  opts.subgraphs_per_iteration = 4;
  opts.num_threads = 1;  // deterministic evaluation order
  aig_depth_downstream tool(80.0);

  opts.reformulation = fast;
  const isdc_result fast_result = run_isdc(g, tool, opts);
  opts.reformulation = ref;
  const isdc_result ref_result = run_isdc(g, tool, opts);

  EXPECT_EQ(fast_result.initial, ref_result.initial) << spec.name;
  EXPECT_EQ(fast_result.final_schedule, ref_result.final_schedule)
      << spec.name;
  EXPECT_TRUE(fast_result.delays == ref_result.delays) << spec.name;
  ASSERT_EQ(fast_result.history.size(), ref_result.history.size())
      << spec.name;
  for (std::size_t i = 0; i < fast_result.history.size(); ++i) {
    EXPECT_EQ(fast_result.history[i].register_bits,
              ref_result.history[i].register_bits)
        << spec.name << " iteration " << i;
    EXPECT_EQ(fast_result.history[i].num_stages,
              ref_result.history[i].num_stages)
        << spec.name << " iteration " << i;
  }
}

/// Full-loop parity across compute-pool widths: compute_threads > 1 runs
/// the parallel kernels, concurrent extraction and parallel
/// fingerprinting, and must reproduce the serial trajectory bit for bit —
/// schedules, matrices and the whole per-iteration history. 0 exercises
/// the process-wide default pool.
void expect_parallel_isdc_parity(const workloads::workload_spec& spec,
                                 reformulation_mode mode) {
  const ir::graph g = spec.build();
  isdc_options opts;
  opts.base.clock_period_ps = spec.clock_period_ps;
  opts.max_iterations = 3;
  opts.subgraphs_per_iteration = 4;
  opts.num_threads = 1;  // deterministic evaluation order
  opts.reformulation = mode;
  aig_depth_downstream tool(80.0);

  opts.compute_threads = 1;
  const isdc_result serial = run_isdc(g, tool, opts);
  for (const int threads : {0, 2, 7}) {
    opts.compute_threads = threads;
    const isdc_result parallel = run_isdc(g, tool, opts);
    EXPECT_EQ(serial.initial, parallel.initial)
        << spec.name << " compute_threads=" << threads;
    EXPECT_EQ(serial.final_schedule, parallel.final_schedule)
        << spec.name << " compute_threads=" << threads;
    EXPECT_TRUE(serial.delays == parallel.delays)
        << spec.name << " compute_threads=" << threads;
    EXPECT_TRUE(serial.naive_delays == parallel.naive_delays)
        << spec.name << " compute_threads=" << threads;
    EXPECT_EQ(serial.iterations, parallel.iterations)
        << spec.name << " compute_threads=" << threads;
    ASSERT_EQ(serial.history.size(), parallel.history.size())
        << spec.name << " compute_threads=" << threads;
    for (std::size_t i = 0; i < serial.history.size(); ++i) {
      EXPECT_EQ(serial.history[i].register_bits,
                parallel.history[i].register_bits)
          << spec.name << " compute_threads=" << threads << " iteration "
          << i;
      EXPECT_EQ(serial.history[i].num_stages,
                parallel.history[i].num_stages)
          << spec.name << " compute_threads=" << threads << " iteration "
          << i;
    }
  }
}

TEST(KernelDiffTest, IsdcParallelComputeParityAlg2) {
  for (const char* name : {"rrot", "binary_divide", "ml_datapath1"}) {
    const workloads::workload_spec* spec = workloads::find_workload(name);
    ASSERT_NE(spec, nullptr) << name;
    expect_parallel_isdc_parity(*spec, reformulation_mode::alg2);
  }
}

TEST(KernelDiffTest, IsdcParallelComputeParityFloydWarshall) {
  for (const char* name : {"rrot", "hsv2rgb"}) {
    const workloads::workload_spec* spec = workloads::find_workload(name);
    ASSERT_NE(spec, nullptr) << name;
    expect_parallel_isdc_parity(*spec,
                                reformulation_mode::floyd_warshall);
  }
}

TEST(KernelDiffTest, IsdcAlg2ParityOnRegistryWorkloads) {
  for (const char* name :
       {"rrot", "hsv2rgb", "binary_divide", "ml_datapath1"}) {
    const workloads::workload_spec* spec = workloads::find_workload(name);
    ASSERT_NE(spec, nullptr) << name;
    expect_isdc_parity(*spec, reformulation_mode::alg2,
                       reformulation_mode::alg2_reference);
  }
}

TEST(KernelDiffTest, IsdcFloydWarshallParityOnRegistryWorkloads) {
  for (const char* name :
       {"rrot", "hsv2rgb", "binary_divide", "ml_datapath1"}) {
    const workloads::workload_spec* spec = workloads::find_workload(name);
    ASSERT_NE(spec, nullptr) << name;
    expect_isdc_parity(*spec, reformulation_mode::floyd_warshall,
                       reformulation_mode::floyd_warshall_reference);
  }
}

}  // namespace
}  // namespace isdc::core
