// Subprocess backend: the worker pool against the reference worker
// binary (tools/isdc_delay_worker), including every failure mode the pool
// must survive — crash mid-request, deadline expiry, protocol garbage,
// bad commands — and the end-to-end guarantee: a fleet run through a
// subprocess pool produces schedules bit-identical to the in-process
// tool it wraps.
//
// ISDC_DELAY_WORKER_PATH is injected by CMake as the built worker's
// absolute path, so the suite is hermetic.
#include <gtest/gtest.h>

#include <pthread.h>
#include <signal.h>

#include <atomic>
#include <chrono>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "backend/netlist.h"
#include "backend/registry.h"
#include "backend/resilient.h"
#include "backend/subprocess_tool.h"
#include "core/downstream.h"
#include "engine/engine.h"
#include "engine/fleet.h"
#include "ir/builder.h"
#include "support/failpoint.h"
#include "workloads/registry.h"

namespace isdc {
namespace {

std::string worker_path() { return ISDC_DELAY_WORKER_PATH; }

ir::graph small_adder() {
  ir::graph g("adder");
  ir::builder b(g);
  b.output(b.add(b.input(8, "a"), b.input(8, "c")));
  return g;
}

TEST(BackendSubprocess, MatchesInProcessSynthesisExactly) {
  backend::subprocess_options options;
  options.command = worker_path();
  options.workers = 2;
  const backend::subprocess_tool pool(options);
  const core::synthesis_downstream reference;

  const ir::graph g = small_adder();
  // %.17g framing means the out-of-process answer is the same double, not
  // merely close — the precondition for bit-identical schedules.
  EXPECT_EQ(pool.subgraph_delay_ps(g), reference.subgraph_delay_ps(g));

  const workloads::workload_spec* spec = workloads::find_workload("rrot");
  ASSERT_NE(spec, nullptr);
  const ir::graph w = spec->build();
  EXPECT_EQ(pool.subgraph_delay_ps(w), reference.subgraph_delay_ps(w));

  const auto stats = pool.stats();
  EXPECT_EQ(stats.calls, 2u);
  EXPECT_EQ(stats.restarts, 0u);
  EXPECT_EQ(stats.retries, 0u);
}

TEST(BackendSubprocess, RegistrySpecBuildsAPool) {
  const backend::tool_handle handle = backend::make_tool(
      "subprocess:cmd=" + worker_path() + " --tool=aig-depth:ps=80"
      ",workers=1,timeout_ms=5000");
  ASSERT_NE(handle.subprocess(), nullptr);
  const core::aig_depth_downstream reference(80.0);
  const ir::graph g = small_adder();
  EXPECT_EQ(handle.tool().subgraph_delay_ps(g),
            reference.subgraph_delay_ps(g));
  EXPECT_EQ(handle.subprocess()->stats().calls, 1u);
}

TEST(BackendSubprocess, CrashMidRequestRespawnsAndRetries) {
  backend::subprocess_options options;
  // The worker exits without replying on its second eval; the respawned
  // worker's counter starts over, so the retry lands on eval #1 and
  // succeeds.
  options.command = worker_path() + " --tool=aig-depth --crash-after=2";
  options.workers = 1;
  options.max_attempts = 3;
  const backend::subprocess_tool pool(options);
  const core::aig_depth_downstream reference;

  const ir::graph g = small_adder();
  EXPECT_EQ(pool.subgraph_delay_ps(g), reference.subgraph_delay_ps(g));
  EXPECT_EQ(pool.subgraph_delay_ps(g), reference.subgraph_delay_ps(g));

  const auto stats = pool.stats();
  EXPECT_EQ(stats.calls, 2u);
  EXPECT_GE(stats.crashes, 1u);
  EXPECT_GE(stats.restarts, 1u);
  EXPECT_GE(stats.retries, 1u);
  EXPECT_EQ(stats.timeouts, 0u);
}

TEST(BackendSubprocess, DeadlineKillsWorkerAndFallbackAnswers) {
  backend::subprocess_options options;
  options.command = worker_path() + " --tool=aig-depth --hang-after=1";
  options.workers = 1;
  options.timeout_ms = 250;
  options.max_attempts = 2;
  const backend::subprocess_tool pool(options);
  const ir::graph g = small_adder();

  // Alone, the pool exhausts its attempts against the hang and reports
  // the deadline.
  try {
    pool.subgraph_delay_ps(g);
    FAIL() << "expected the deadline to expire";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("deadline"), std::string::npos)
        << e.what();
  }
  auto stats = pool.stats();
  EXPECT_GE(stats.timeouts, 2u);
  EXPECT_GE(stats.restarts, 2u);

  // Composed, the same failure degrades to the in-process proxy instead.
  const core::aig_depth_downstream proxy;
  const backend::fallback_tool chain({&pool, &proxy});
  EXPECT_EQ(chain.subgraph_delay_ps(g), proxy.subgraph_delay_ps(g));
  const auto links = chain.stats();
  EXPECT_EQ(links[0].failures, 1u);
  EXPECT_EQ(links[1].calls, 1u);
}

TEST(BackendSubprocess, ProtocolGarbageIsRejectedWithDescription) {
  backend::subprocess_options options;
  options.command = worker_path() + " --tool=aig-depth --garbage-after=1";
  options.workers = 1;
  const backend::subprocess_tool pool(options);
  try {
    pool.subgraph_delay_ps(small_adder());
    FAIL() << "expected a protocol error";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("protocol error"),
              std::string::npos)
        << e.what();
  }
  EXPECT_GE(pool.stats().protocol_errors, 1u);
}

TEST(BackendSubprocess, WorkerReportedErrorsAreNotRetried) {
  backend::subprocess_options options;
  options.command = worker_path() + " --tool=aig-depth";
  options.workers = 1;
  const backend::subprocess_tool pool(options);
  // A graph with no outputs fails the worker's IR verification, so it
  // answers "err ..." — a deterministic failure the pool must surface
  // without burning retries or killing the (healthy, in-sync) worker.
  ir::graph g("no_outputs");
  ir::builder b(g);
  b.input(8, "a");
  try {
    pool.subgraph_delay_ps(g);
    FAIL() << "expected a worker-reported error";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("worker error"), std::string::npos)
        << e.what();
  }
  auto stats = pool.stats();
  EXPECT_EQ(stats.retries, 0u);
  EXPECT_EQ(stats.restarts, 0u);
  // The same worker keeps answering afterwards.
  EXPECT_NO_THROW(pool.subgraph_delay_ps(small_adder()));
  EXPECT_EQ(pool.stats().restarts, 0u);
}

TEST(BackendSubprocess, SplitOkLineIsReassembled) {
  // The worker flushes "ok <delay>\n" in two writes ~30 ms apart
  // (worker.reply=partial); the client's poll/read loop must reassemble
  // the line instead of misparsing the first fragment.
  backend::subprocess_options options;
  options.command = worker_path() +
                    " --tool=aig-depth --failpoints=worker.reply=partial@p=1";
  options.workers = 1;
  options.timeout_ms = 5000;
  const backend::subprocess_tool pool(options);
  const core::aig_depth_downstream reference;

  const ir::graph g = small_adder();
  for (int i = 0; i < 3; ++i) {
    EXPECT_EQ(pool.subgraph_delay_ps(g), reference.subgraph_delay_ps(g));
  }
  const auto stats = pool.stats();
  EXPECT_EQ(stats.retries, 0u);
  EXPECT_EQ(stats.protocol_errors, 0u);
  EXPECT_EQ(stats.restarts, 0u);
}

TEST(BackendSubprocess, LargeRequestSurvivesSignalStorm) {
  // A netlist bigger than the 64 KiB pipe buffer forces the request write
  // to block mid-way; a storm of SIGUSR1s (installed without SA_RESTART)
  // makes write/poll/read return EINTR repeatedly. The pool's I/O loops
  // must absorb every interruption and still answer exactly.
  struct sigaction sa = {};
  sa.sa_handler = [](int) {};
  sa.sa_flags = 0;  // deliberately no SA_RESTART: syscalls fail with EINTR
  struct sigaction old_sa;
  ASSERT_EQ(::sigaction(SIGUSR1, &sa, &old_sa), 0);

  // Bitwise-only ops and rounds=0 keep the evaluation cheap (plain
  // lowering + depth, no AIG optimization) while the netlist text still
  // overflows the pipe buffer.
  workloads::random_dag_options dag;
  dag.arith_fraction = 0.0;
  const ir::graph big = workloads::build_random_dag(/*seed=*/7, 4000, dag);
  ASSERT_GT(backend::to_text(big, ';').size(), 65536u)
      << "netlist must exceed the pipe buffer for the test to bite";

  backend::subprocess_options options;
  options.command = worker_path() + " --tool=aig-depth:rounds=0";
  options.workers = 1;
  options.timeout_ms = 30000;
  const backend::subprocess_tool pool(options);
  synth::synthesis_options no_opt;
  no_opt.opt_rounds = 0;
  const core::aig_depth_downstream reference(80.0, 0.0, no_opt);

  std::atomic<bool> stop{false};
  const pthread_t target = ::pthread_self();
  std::thread storm([&] {
    while (!stop.load()) {
      ::pthread_kill(target, SIGUSR1);
      std::this_thread::sleep_for(std::chrono::microseconds(200));
    }
  });
  double delay = -1.0;
  try {
    delay = pool.subgraph_delay_ps(big);
  } catch (...) {
    stop.store(true);
    storm.join();
    ::sigaction(SIGUSR1, &old_sa, nullptr);
    throw;
  }
  stop.store(true);
  storm.join();
  ::sigaction(SIGUSR1, &old_sa, nullptr);

  EXPECT_EQ(delay, reference.subgraph_delay_ps(big));
  const auto stats = pool.stats();
  EXPECT_EQ(stats.retries, 0u);  // EINTR is absorbed, never a failure
  EXPECT_EQ(stats.protocol_errors, 0u);
}

TEST(BackendSubprocess, ClientReadFailpointRecoversViaRetry) {
  // Client-side chaos: the first read behaves as if the deadline expired
  // (backend.subprocess.read=timeout@n=1), so the pool kills the worker,
  // respawns and retries — and the retry answers bit-exactly.
  backend::subprocess_options options;
  options.command = worker_path() + " --tool=aig-depth";
  options.workers = 1;
  options.max_attempts = 3;
  options.backoff_ms = 1.0;  // keep the test fast
  options.backoff_max_ms = 2.0;
  const backend::subprocess_tool pool(options);
  const core::aig_depth_downstream reference;

  failpoint::scoped_arm arm("backend.subprocess.read=timeout@n=1");
  const ir::graph g = small_adder();
  EXPECT_EQ(pool.subgraph_delay_ps(g), reference.subgraph_delay_ps(g));
  const auto stats = pool.stats();
  EXPECT_EQ(stats.timeouts, 1u);
  EXPECT_EQ(stats.restarts, 1u);
  EXPECT_EQ(stats.retries, 1u);
  EXPECT_EQ(pool.live_workers(), 1);
  EXPECT_EQ(failpoint::total_fires(), 1u);
}

TEST(BackendSubprocess, RegistryParsesBackoffParams) {
  const backend::tool_handle handle = backend::make_tool(
      "subprocess:cmd=" + worker_path() +
      " --tool=aig-depth,workers=1,attempts=2,backoff_ms=1,backoff_max_ms=8");
  ASSERT_NE(handle.subprocess(), nullptr);
  EXPECT_DOUBLE_EQ(handle.subprocess()->options().backoff_ms, 1.0);
  EXPECT_DOUBLE_EQ(handle.subprocess()->options().backoff_max_ms, 8.0);
  EXPECT_NO_THROW(handle.tool().subgraph_delay_ps(small_adder()));
}

TEST(BackendSubprocess, BadCommandFailsConstructionDescriptively) {
  backend::subprocess_options options;
  options.command = "definitely-not-a-real-binary-xyzzy";
  options.workers = 1;
  options.timeout_ms = 2000;
  try {
    const backend::subprocess_tool pool(options);
    FAIL() << "expected spawn failure";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("ready handshake"),
              std::string::npos)
        << e.what();
  }
}

// The acceptance bar: a fleet run over 4 shards through a 2-worker
// subprocess pool (wrapping the built-in synthesis flow behind the wire
// protocol) schedules bit-identically to solo in-process runs.
TEST(BackendSubprocess, FleetThroughWorkerPoolMatchesInProcessBitExactly) {
  const std::vector<std::string> names = {"rrot", "crc32", "hsv2rgb",
                                          "ml_datapath0_opcode0"};
  core::isdc_options opts;
  opts.max_iterations = 2;
  opts.subgraphs_per_iteration = 4;
  opts.num_threads = 2;

  std::vector<const workloads::workload_spec*> specs;
  std::vector<ir::graph> graphs;
  for (const std::string& name : names) {
    specs.push_back(workloads::find_workload(name));
    ASSERT_NE(specs.back(), nullptr) << name;
    graphs.push_back(specs.back()->build());
  }

  // Solo arm: in-process synthesis, one fresh engine per design.
  const core::synthesis_downstream in_process(opts.synth);
  std::vector<core::isdc_result> solo;
  for (std::size_t i = 0; i < graphs.size(); ++i) {
    engine::engine e;
    core::isdc_options run_opts = opts;
    run_opts.base.clock_period_ps = specs[i]->clock_period_ps;
    solo.push_back(e.run(graphs[i], in_process, run_opts));
  }

  // Fleet arm: 4 shards sharing a 2-worker subprocess pool.
  backend::subprocess_options pool_options;
  pool_options.command = worker_path();  // default --tool=synthesis
  pool_options.workers = 2;
  const backend::subprocess_tool pool(pool_options);

  engine::fleet_options fopts;
  fopts.shards = 4;
  fopts.isdc = opts;
  engine::fleet fleet(fopts);
  std::vector<engine::fleet_job> jobs;
  for (std::size_t i = 0; i < graphs.size(); ++i) {
    jobs.push_back({.name = names[i],
                    .graph = &graphs[i],
                    .clock_period_ps = specs[i]->clock_period_ps});
  }
  const engine::fleet_report report = fleet.run(jobs, pool);

  for (std::size_t i = 0; i < jobs.size(); ++i) {
    ASSERT_EQ(report.results[i].error, nullptr) << names[i];
    EXPECT_TRUE(report.results[i].result.final_schedule ==
                solo[i].final_schedule)
        << names[i] << ": subprocess fleet diverged from in-process solo";
    EXPECT_EQ(report.results[i].result.iterations, solo[i].iterations)
        << names[i];
  }
  const auto stats = pool.stats();
  EXPECT_GT(stats.calls, 0u);
  EXPECT_EQ(stats.restarts, 0u);
  EXPECT_EQ(stats.protocol_errors, 0u);
}

}  // namespace
}  // namespace isdc
