// The asynchronous pipelined evaluate stage: sync-vs-async quality parity
// on registry workloads, single-flight dedup under flaky downstream
// latency, the end-of-run drain (no measurement is ever lost), and the
// thread-safe evaluation-cache ticket protocol backing it all.
#include <atomic>
#include <chrono>
#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "core/downstream.h"
#include "engine/engine.h"
#include "ir/builder.h"
#include "sched/metrics.h"
#include "sched/validate.h"
#include "workloads/registry.h"

namespace isdc::engine {
namespace {

/// Thread-safe constant-delay downstream stub that counts calls.
class counting_downstream final : public core::downstream_tool {
public:
  explicit counting_downstream(double delay, std::string name = "counting")
      : delay_(delay), name_(std::move(name)) {}
  double subgraph_delay_ps(const ir::graph&) const override {
    ++calls_;
    return delay_;
  }
  std::string name() const override { return name_; }
  int calls() const { return calls_.load(); }

private:
  double delay_;
  std::string name_;
  mutable std::atomic<int> calls_{0};
};

/// Counts invocations and sleeps a different amount each call, so
/// completions overtake each other and land out of dispatch order.
class flaky_latency_downstream final : public core::downstream_tool {
public:
  explicit flaky_latency_downstream(double delay) : delay_(delay) {}
  double subgraph_delay_ps(const ir::graph&) const override {
    const int call = calls_.fetch_add(1);
    std::this_thread::sleep_for(std::chrono::milliseconds(call % 4));
    return delay_;
  }
  std::string name() const override { return "flaky-latency"; }
  int calls() const { return calls_.load(); }

private:
  double delay_;
  mutable std::atomic<int> calls_{0};
};

const synth::delay_model& shared_model() {
  static const synth::delay_model model{synth::synthesis_options{}};
  return model;
}

core::isdc_options async_options(double clock_period_ps) {
  core::isdc_options opts;
  opts.base.clock_period_ps = clock_period_ps;
  opts.max_iterations = 12;
  opts.subgraphs_per_iteration = 8;
  opts.num_threads = 2;
  return opts;
}

struct history_totals {
  int dispatched = 0;
  int coalesced = 0;
  int arrived = 0;
  int hits = 0;
};

history_totals totals(const core::isdc_result& result) {
  history_totals t;
  for (const core::iteration_record& rec : result.history) {
    t.dispatched += rec.evaluations_dispatched;
    t.coalesced += rec.evaluations_coalesced;
    t.arrived += rec.evaluations_arrived;
    t.hits += rec.cache_hits;
  }
  return t;
}

TEST(EvaluationCacheAsyncTest, TryAcquireIsSingleFlight) {
  evaluation_cache cache;

  // First acquisition wins the ticket; the second coalesces onto it.
  EXPECT_EQ(cache.try_acquire(7).status,
            evaluation_cache::acquire_status::acquired);
  EXPECT_EQ(cache.try_acquire(7).status,
            evaluation_cache::acquire_status::in_flight);
  EXPECT_EQ(cache.num_in_flight(), 1u);
  EXPECT_EQ(cache.stats().misses, 1u);
  EXPECT_EQ(cache.stats().coalesced, 1u);

  // Storing releases the ticket and later acquisitions hit the memo.
  cache.store(7, 321.0);
  EXPECT_EQ(cache.num_in_flight(), 0u);
  const auto acq = cache.try_acquire(7);
  EXPECT_EQ(acq.status, evaluation_cache::acquire_status::hit);
  EXPECT_DOUBLE_EQ(acq.delay_ps, 321.0);

  // Abandon releases a ticket without memoizing, so the key can be
  // acquired (and evaluated) again.
  EXPECT_EQ(cache.try_acquire(9).status,
            evaluation_cache::acquire_status::acquired);
  cache.abandon(9);
  EXPECT_EQ(cache.num_in_flight(), 0u);
  EXPECT_EQ(cache.try_acquire(9).status,
            evaluation_cache::acquire_status::acquired);
}

TEST(EvaluationCacheAsyncTest, ConcurrentAcquireGrantsOneTicketPerKey) {
  evaluation_cache cache;
  constexpr int kThreads = 8;
  constexpr std::uint64_t kKeys = 32;
  std::atomic<int> acquired{0};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&cache, &acquired] {
      for (std::uint64_t key = 0; key < kKeys; ++key) {
        const auto acq = cache.try_acquire(key);
        if (acq.status == evaluation_cache::acquire_status::acquired) {
          ++acquired;
          cache.store(key, static_cast<double>(key));
        }
      }
    });
  }
  for (std::thread& t : threads) {
    t.join();
  }
  // Exactly one winner per key, no matter the interleaving; every other
  // attempt either coalesced or hit the stored value.
  EXPECT_EQ(acquired.load(), static_cast<int>(kKeys));
  EXPECT_EQ(cache.size(), kKeys);
  EXPECT_EQ(cache.num_in_flight(), 0u);
}

/// Async and sync must reach schedules of equal quality when the
/// downstream tool answers instantly: same stage count (II) and the same
/// achieved (post-synthesis) clock period, both legal under the clock.
class AsyncParityTest : public ::testing::TestWithParam<const char*> {};

TEST_P(AsyncParityTest, MatchesSyncFinalQuality) {
  const workloads::workload_spec* spec = workloads::find_workload(GetParam());
  ASSERT_NE(spec, nullptr);
  const ir::graph g = spec->build();
  core::aig_depth_downstream tool;

  core::isdc_options opts = async_options(spec->clock_period_ps);
  const core::isdc_result sync =
      engine().run(g, tool, opts, &shared_model());

  opts.async_evaluation = true;
  const core::isdc_result async =
      engine().run(g, tool, opts, &shared_model());

  // Equal initiation interval (pipeline stage count).
  EXPECT_EQ(async.final_schedule.num_stages(),
            sync.final_schedule.num_stages());
  // Equal achieved clock period, measured by the real downstream flow on
  // both final schedules.
  const double sync_period =
      sched::synthesized_critical_delay(g, sync.final_schedule, opts.synth);
  const double async_period =
      sched::synthesized_critical_delay(g, async.final_schedule, opts.synth);
  EXPECT_DOUBLE_EQ(async_period, sync_period);
  // Both runs must deliver legal schedules and the paper's improvement
  // direction.
  EXPECT_TRUE(sched::validate_schedule(g, async.final_schedule, async.delays,
                                       spec->clock_period_ps)
                  .empty());
  EXPECT_LE(sched::register_bits(g, async.final_schedule),
            sched::register_bits(g, async.initial));

  // The async run's ticket accounting must balance: every ticket — own
  // dispatches and subscriptions coalesced onto an isomorphic cone's
  // pending measurement — produced exactly one arrival, and nothing is
  // pending at the end.
  const history_totals t = totals(async);
  EXPECT_EQ(t.dispatched + t.coalesced, t.arrived);
  EXPECT_GT(t.dispatched, 0);
  EXPECT_EQ(async.history.back().evaluations_in_flight, 0u);
}

INSTANTIATE_TEST_SUITE_P(Workloads, AsyncParityTest,
                         ::testing::Values("rrot", "ml_datapath1",
                                           "binary_divide", "crc32"),
                         [](const auto& info) {
                           return std::string(info.param);
                         });

TEST(AsyncEvaluationTest, SingleFlightDedupUnderFlakyLatency) {
  const workloads::workload_spec* spec = workloads::find_workload("rrot");
  ASSERT_NE(spec, nullptr);
  const ir::graph g = spec->build();
  flaky_latency_downstream tool(900.0);

  core::isdc_options opts = async_options(spec->clock_period_ps);
  opts.async_evaluation = true;
  engine e;
  const core::isdc_result result = e.run(g, tool, opts, &shared_model());

  // Single-flight: every distinct canonical fingerprint was measured
  // exactly once, even when an isomorphic cone was selected while the
  // first measurement was still in flight (those selections subscribe
  // onto the pending ticket and arrive without a second call).
  EXPECT_EQ(static_cast<std::size_t>(tool.calls()), e.cache().size());
  const history_totals t = totals(result);
  EXPECT_EQ(t.dispatched, tool.calls());
  EXPECT_EQ(t.dispatched + t.coalesced, t.arrived);
  EXPECT_EQ(e.cache().num_in_flight(), 0u);
}

TEST(AsyncEvaluationTest, DrainAtEndLosesNoEvaluation) {
  const workloads::workload_spec* spec = workloads::find_workload("rrot");
  ASSERT_NE(spec, nullptr);
  const ir::graph g = spec->build();
  counting_downstream inner(900.0);
  core::latency_downstream tool(inner, 25.0);

  // A tight iteration budget against a slow tool: the loop is guaranteed
  // to run out with measurements still in flight, so the final drain must
  // recover them.
  core::isdc_options opts = async_options(spec->clock_period_ps);
  opts.async_evaluation = true;
  opts.max_iterations = 2;
  engine e;
  const core::isdc_result result = e.run(g, tool, opts, &shared_model());

  const history_totals t = totals(result);
  EXPECT_GT(t.dispatched, 0);
  EXPECT_EQ(t.dispatched + t.coalesced, t.arrived);  // nothing lost
  EXPECT_EQ(static_cast<std::uint64_t>(t.dispatched), tool.calls());
  EXPECT_EQ(e.cache().size(), tool.calls());
  EXPECT_EQ(e.cache().num_in_flight(), 0u);
  // The drain pass is accounted as one extra record beyond the loop's
  // iterations, and it ends with an empty pipeline.
  EXPECT_EQ(result.history.back().evaluations_in_flight, 0u);
  EXPECT_GT(result.history.back().evaluations_arrived, 0);
  // Drained measurements reached the matrix: the final schedule is legal
  // under it and best-so-far tracking saw every record.
  EXPECT_TRUE(sched::validate_schedule(g, result.final_schedule,
                                       result.delays, spec->clock_period_ps)
                  .empty());
}

TEST(AsyncEvaluationTest, ZeroLatencyPipelineStaysBalanced) {
  // A plain add-chain through the async path with an instant tool: the
  // bookkeeping must balance on designs where the run ends by exhaustion.
  ir::graph g("addchain");
  ir::builder bl(g);
  ir::node_id v = bl.input(32, "x");
  const ir::node_id y = bl.input(32, "y");
  for (int i = 0; i < 6; ++i) {
    v = bl.add(v, y);
  }
  g.mark_output(v);

  counting_downstream tool(900.0);
  core::isdc_options opts = async_options(2500.0);
  opts.async_evaluation = true;
  opts.expansion = extract::expansion_mode::cone;
  engine e;
  const core::isdc_result result = e.run(g, tool, opts, &shared_model());

  const history_totals t = totals(result);
  EXPECT_EQ(t.dispatched + t.coalesced, t.arrived);
  EXPECT_EQ(t.dispatched, tool.calls());
  EXPECT_EQ(e.cache().num_in_flight(), 0u);
  EXPECT_EQ(result.history.back().evaluations_in_flight, 0u);
}

}  // namespace
}  // namespace isdc::engine
