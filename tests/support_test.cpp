#include <algorithm>
#include <atomic>
#include <chrono>
#include <set>
#include <sstream>
#include <stdexcept>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "support/cancellation.h"
#include "support/check.h"
#include "support/completion_queue.h"
#include "support/crc32.h"
#include "support/failpoint.h"
#include "support/retry.h"
#include "support/rng.h"
#include "support/stats.h"
#include "support/table.h"
#include "support/thread_pool.h"

namespace isdc {
namespace {

TEST(CheckTest, PassingCheckDoesNothing) {
  EXPECT_NO_THROW(ISDC_CHECK(1 + 1 == 2));
}

TEST(CheckTest, FailingCheckThrowsWithMessage) {
  try {
    ISDC_CHECK(false, "custom " << 42);
    FAIL() << "expected check_error";
  } catch (const check_error& e) {
    EXPECT_NE(std::string(e.what()).find("custom 42"), std::string::npos);
    EXPECT_NE(std::string(e.what()).find("support_test.cpp"),
              std::string::npos);
  }
}

TEST(CheckTest, FailingCheckWithoutMessage) {
  EXPECT_THROW(ISDC_CHECK(false), check_error);
}

TEST(RngTest, DeterministicForSameSeed) {
  rng a(123);
  rng b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.next(), b.next());
  }
}

TEST(RngTest, DifferentSeedsDiffer) {
  rng a(1);
  rng b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    same += a.next() == b.next() ? 1 : 0;
  }
  EXPECT_LT(same, 4);
}

TEST(RngTest, NextBelowInRange) {
  rng r(7);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(r.next_below(17), 17u);
  }
}

TEST(RngTest, NextInInclusiveRange) {
  rng r(9);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 500; ++i) {
    const std::int64_t v = r.next_in(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 7u);  // all values hit
}

TEST(RngTest, DoublesInUnitInterval) {
  rng r(11);
  for (int i = 0; i < 1000; ++i) {
    const double d = r.next_double();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(StatsTest, MeanAndGeomean) {
  const std::vector<double> xs = {1.0, 2.0, 4.0};
  EXPECT_DOUBLE_EQ(mean(xs), 7.0 / 3.0);
  EXPECT_NEAR(geomean(xs), 2.0, 1e-12);
  EXPECT_EQ(mean({}), 0.0);
}

TEST(StatsTest, GeomeanRejectsNonPositive) {
  const std::vector<double> xs = {1.0, 0.0};
  EXPECT_THROW(geomean(xs), check_error);
}

TEST(StatsTest, PearsonPerfectCorrelation) {
  const std::vector<double> xs = {1, 2, 3, 4, 5};
  const std::vector<double> ys = {2, 4, 6, 8, 10};
  EXPECT_NEAR(pearson(xs, ys), 1.0, 1e-12);
  std::vector<double> neg = {-2, -4, -6, -8, -10};
  EXPECT_NEAR(pearson(xs, neg), -1.0, 1e-12);
}

TEST(StatsTest, PearsonDegenerate) {
  const std::vector<double> xs = {1, 1, 1};
  const std::vector<double> ys = {1, 2, 3};
  EXPECT_EQ(pearson(xs, ys), 0.0);
}

TEST(StatsTest, LinearFitRecoversLine) {
  const std::vector<double> xs = {0, 1, 2, 3};
  const std::vector<double> ys = {5, 7, 9, 11};  // y = 2x + 5
  const auto fit = linear_fit(xs, ys);
  EXPECT_NEAR(fit.slope, 2.0, 1e-12);
  EXPECT_NEAR(fit.intercept, 5.0, 1e-12);
}

TEST(StatsTest, MeanRelativeError) {
  const std::vector<double> est = {110, 90};
  const std::vector<double> ref = {100, 100};
  EXPECT_NEAR(mean_relative_error(est, ref), 0.1, 1e-12);
}

TEST(ThreadPoolTest, ParallelForCoversAllIndices) {
  thread_pool pool(4);
  std::vector<std::atomic<int>> hits(100);
  pool.parallel_for(100, [&](std::size_t i) { hits[i]++; });
  for (const auto& h : hits) {
    EXPECT_EQ(h.load(), 1);
  }
}

TEST(ThreadPoolTest, SubmitReturnsValue) {
  thread_pool pool(2);
  auto fut = pool.submit([] { return 42; });
  EXPECT_EQ(fut.get(), 42);
}

TEST(ThreadPoolTest, ExceptionPropagates) {
  thread_pool pool(2);
  EXPECT_THROW(
      pool.parallel_for(4,
                        [](std::size_t i) {
                          if (i == 2) {
                            throw std::runtime_error("boom");
                          }
                        }),
      std::runtime_error);
}

TEST(ThreadPoolTest, ParallelForNestedInsidePoolTask) {
  // Chunked dispatch with caller participation: parallel_for issued from
  // inside pool tasks must finish even when EVERY worker is occupied by
  // such a caller — here both workers of a 2-thread pool nest one, so
  // neither's helper tasks ever get a worker; the callers must drain the
  // counters themselves instead of blocking on the helpers.
  thread_pool pool(2);
  std::vector<std::future<int>> futs;
  for (int t = 0; t < 2; ++t) {
    futs.push_back(pool.submit([&pool] {
      std::atomic<int> sum{0};
      pool.parallel_for(50,
                        [&](std::size_t i) { sum += static_cast<int>(i); });
      return sum.load();
    }));
  }
  for (auto& fut : futs) {
    EXPECT_EQ(fut.get(), 49 * 50 / 2);
  }
}

TEST(ThreadPoolTest, ParallelForSingleAndEmpty) {
  thread_pool pool(2);
  std::atomic<int> calls{0};
  pool.parallel_for(0, [&](std::size_t) { ++calls; });
  EXPECT_EQ(calls.load(), 0);
  pool.parallel_for(1, [&](std::size_t i) {
    EXPECT_EQ(i, 0u);
    ++calls;
  });
  EXPECT_EQ(calls.load(), 1);
}

TEST(ThreadPoolTest, ResolveDefaultThreadsParsing) {
  const std::size_t hw =
      std::max<std::size_t>(1, std::thread::hardware_concurrency());
  // Unset / empty / unparsable / non-positive all fall back to hardware
  // concurrency; valid values are capped there.
  EXPECT_EQ(resolve_default_threads(nullptr), hw);
  EXPECT_EQ(resolve_default_threads(""), hw);
  EXPECT_EQ(resolve_default_threads("garbage"), hw);
  EXPECT_EQ(resolve_default_threads("3x"), hw);
  EXPECT_EQ(resolve_default_threads("0"), hw);
  EXPECT_EQ(resolve_default_threads("-3"), hw);
  EXPECT_EQ(resolve_default_threads("1"), 1u);
  EXPECT_EQ(resolve_default_threads("2"), std::min<std::size_t>(2, hw));
  EXPECT_EQ(resolve_default_threads("999999"), hw);
}

TEST(ThreadPoolTest, DefaultPoolIsSharedAndUsable) {
  thread_pool& a = default_pool();
  thread_pool& b = default_pool();
  EXPECT_EQ(&a, &b);  // one process-wide pool
  EXPECT_GE(a.size(), 1u);
  std::atomic<int> hits{0};
  a.parallel_for(100, [&](std::size_t) { ++hits; });
  EXPECT_EQ(hits.load(), 100);
}

TEST(ThreadPoolTest, ParallelForSkipsAfterFailure) {
  // Fail-fast: once an index throws, not-yet-started indices are skipped,
  // so a long tail never runs. The already-running chunk finishes.
  thread_pool pool(2);
  std::atomic<int> ran{0};
  EXPECT_THROW(pool.parallel_for(100000,
                                 [&](std::size_t) {
                                   ++ran;
                                   throw std::runtime_error("boom");
                                 }),
               std::runtime_error);
  EXPECT_LT(ran.load(), 100000);
}

TEST(CompletionQueueTest, PushTryDrainRoundTrip) {
  completion_queue<int> q;
  EXPECT_TRUE(q.try_drain().empty());
  EXPECT_EQ(q.size(), 0u);
  q.push(1);
  q.push(2);
  EXPECT_EQ(q.size(), 2u);
  const std::vector<int> batch = q.try_drain();
  EXPECT_EQ(batch, (std::vector<int>{1, 2}));
  EXPECT_TRUE(q.try_drain().empty());
}

TEST(CompletionQueueTest, WaitDrainBlocksUntilPush) {
  completion_queue<int> q;
  thread_pool pool(1);
  auto fut = pool.submit([&q] {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    q.push(7);
  });
  // Issued before the push lands: wait_drain must block, then deliver.
  const std::vector<int> batch = q.wait_drain();
  ASSERT_EQ(batch.size(), 1u);
  EXPECT_EQ(batch[0], 7);
  fut.get();
}

TEST(CompletionQueueTest, ManyProducersLoseNothing) {
  completion_queue<int> q;
  thread_pool pool(4);
  constexpr int kPerProducer = 500;
  pool.parallel_for(4, [&](std::size_t p) {
    for (int i = 0; i < kPerProducer; ++i) {
      q.push(static_cast<int>(p) * kPerProducer + i);
    }
  });
  std::vector<int> all = q.try_drain();
  std::sort(all.begin(), all.end());
  ASSERT_EQ(all.size(), 4u * kPerProducer);
  for (int i = 0; i < 4 * kPerProducer; ++i) {
    EXPECT_EQ(all[i], i);
  }
}

TEST(TableTest, AlignedOutput) {
  text_table t;
  t.set_header({"name", "value"});
  t.add_row({"a", "1"});
  t.add_row({"longer", "22"});
  std::ostringstream os;
  t.print(os);
  const std::string s = os.str();
  EXPECT_NE(s.find("name"), std::string::npos);
  EXPECT_NE(s.find("longer"), std::string::npos);
  EXPECT_NE(s.find("----"), std::string::npos);
}

TEST(TableTest, CsvOutput) {
  text_table t;
  t.set_header({"a", "b"});
  t.add_row({"1", "2"});
  std::ostringstream os;
  t.print_csv(os);
  EXPECT_EQ(os.str(), "a,b\n1,2\n");
}

TEST(TableTest, FormatDouble) {
  EXPECT_EQ(format_double(3.14159, 2), "3.14");
  EXPECT_EQ(format_double(2.0, 0), "2");
}

TEST(FailpointTest, DisarmedReturnsNone) {
  ASSERT_FALSE(failpoint::armed());
  EXPECT_EQ(failpoint::maybe_fail("support.test.site"),
            failpoint::kind::none);
  EXPECT_EQ(failpoint::total_fires(), 0u);
}

TEST(FailpointTest, AlwaysOnSiteFiresEveryCall) {
  failpoint::scoped_arm arm("support.test.a=fail");
  EXPECT_TRUE(failpoint::armed());
  for (int i = 0; i < 5; ++i) {
    EXPECT_EQ(failpoint::maybe_fail("support.test.a"),
              failpoint::kind::fail);
  }
  EXPECT_EQ(failpoint::maybe_fail("support.test.other"),
            failpoint::kind::none);
  const auto stats = failpoint::stats();
  ASSERT_EQ(stats.size(), 1u);
  EXPECT_EQ(stats[0].site, "support.test.a");
  EXPECT_EQ(stats[0].calls, 5u);
  EXPECT_EQ(stats[0].fires, 5u);
  EXPECT_EQ(failpoint::total_fires(), 5u);
}

TEST(FailpointTest, NthCallTriggerFiresExactlyOnce) {
  failpoint::scoped_arm arm("support.test.n=timeout@n=3");
  int fires = 0;
  for (int i = 1; i <= 10; ++i) {
    const auto k = failpoint::maybe_fail("support.test.n");
    if (k != failpoint::kind::none) {
      ++fires;
      EXPECT_EQ(i, 3);
      EXPECT_EQ(k, failpoint::kind::timeout);
    }
  }
  EXPECT_EQ(fires, 1);
}

TEST(FailpointTest, EveryTriggerFiresPeriodically) {
  failpoint::scoped_arm arm("support.test.e=garbage@every=4");
  std::vector<int> fired_on;
  for (int i = 1; i <= 12; ++i) {
    if (failpoint::maybe_fail("support.test.e") != failpoint::kind::none) {
      fired_on.push_back(i);
    }
  }
  EXPECT_EQ(fired_on, (std::vector<int>{4, 8, 12}));
}

TEST(FailpointTest, ProbabilityIsSeedDeterministic) {
  const auto sample = [](const std::string& spec) {
    failpoint::scoped_arm arm(spec);
    std::vector<bool> fires;
    for (int i = 0; i < 200; ++i) {
      fires.push_back(failpoint::maybe_fail("support.test.p") !=
                      failpoint::kind::none);
    }
    return fires;
  };
  const auto a = sample("seed=7;support.test.p=fail@p=0.3");
  const auto b = sample("seed=7;support.test.p=fail@p=0.3");
  const auto c = sample("seed=8;support.test.p=fail@p=0.3");
  EXPECT_EQ(a, b);  // same seed: bit-identical decision stream
  EXPECT_NE(a, c);  // different seed: a different (valid) stream
  const int fires = static_cast<int>(std::count(a.begin(), a.end(), true));
  EXPECT_GT(fires, 20);  // ~60 expected; loose 3-sigma-ish bounds
  EXPECT_LT(fires, 120);
}

TEST(FailpointTest, MalformedSpecThrowsAndEnvArmIsForgiving) {
  EXPECT_THROW(failpoint::arm("support.test.bad"), std::runtime_error);
  EXPECT_THROW(failpoint::arm("site=explode"), std::runtime_error);
  EXPECT_THROW(failpoint::arm("site=fail@p=2.0"), std::runtime_error);
  EXPECT_FALSE(failpoint::armed());  // failed arms leave nothing armed
}

TEST(FailpointTest, ScopedArmRestoresPreviousSchedule) {
  failpoint::scoped_arm outer("support.test.outer=fail");
  {
    failpoint::scoped_arm inner("support.test.inner=timeout");
    EXPECT_EQ(failpoint::armed_spec(), "support.test.inner=timeout");
    EXPECT_EQ(failpoint::maybe_fail("support.test.outer"),
              failpoint::kind::none);
  }
  EXPECT_EQ(failpoint::armed_spec(), "support.test.outer=fail");
  EXPECT_EQ(failpoint::maybe_fail("support.test.outer"),
            failpoint::kind::fail);
}

TEST(RetryTest, BackoffGrowsExponentiallyWithinBounds) {
  retry_policy p;
  p.initial_backoff_ms = 10.0;
  p.multiplier = 2.0;
  p.max_backoff_ms = 60.0;
  p.jitter = 0.0;
  EXPECT_DOUBLE_EQ(p.backoff_ms(0), 0.0);
  EXPECT_DOUBLE_EQ(p.backoff_ms(1), 10.0);
  EXPECT_DOUBLE_EQ(p.backoff_ms(2), 20.0);
  EXPECT_DOUBLE_EQ(p.backoff_ms(3), 40.0);
  EXPECT_DOUBLE_EQ(p.backoff_ms(4), 60.0);  // capped
  EXPECT_DOUBLE_EQ(p.backoff_ms(9), 60.0);
}

TEST(RetryTest, JitterIsBoundedAndDeterministic) {
  retry_policy p;
  p.initial_backoff_ms = 100.0;
  p.max_backoff_ms = 100.0;
  p.jitter = 0.25;
  for (int retry = 1; retry <= 8; ++retry) {
    const double ms = p.backoff_ms(retry);
    EXPECT_GE(ms, 75.0);
    EXPECT_LE(ms, 125.0);
    EXPECT_DOUBLE_EQ(ms, p.backoff_ms(retry));  // pure in (seed, retry)
  }
  retry_policy q = p;
  q.seed ^= 1;
  bool any_different = false;
  for (int retry = 1; retry <= 8; ++retry) {
    any_different |= p.backoff_ms(retry) != q.backoff_ms(retry);
  }
  EXPECT_TRUE(any_different);
}

TEST(RetryTest, RetryCallRetriesUpToMaxAttempts) {
  retry_policy p;
  p.max_attempts = 3;
  p.initial_backoff_ms = 0.0;  // no sleeping in tests
  int calls = 0;
  const int v = retry_call(p, [&] {
    if (++calls < 3) {
      throw std::runtime_error("flaky");
    }
    return 42;
  });
  EXPECT_EQ(v, 42);
  EXPECT_EQ(calls, 3);

  calls = 0;
  EXPECT_THROW(retry_call(p,
                          [&]() -> int {
                            ++calls;
                            throw std::runtime_error("always");
                          }),
               std::runtime_error);
  EXPECT_EQ(calls, 3);
}

TEST(Crc32Test, KnownVectorAndChaining) {
  const char data[] = "123456789";
  EXPECT_EQ(crc32(data, 9), 0xCBF43926u);
  // Chaining two halves equals one pass over the whole buffer.
  const std::uint32_t first = crc32(data, 4);
  EXPECT_EQ(crc32(data + 4, 5, first), crc32(data, 9));
  EXPECT_NE(crc32(data, 8), crc32(data, 9));
}

TEST(CancellationTest, InertTokenNeverCancels) {
  cancellation_token t;
  EXPECT_FALSE(t.valid());
  EXPECT_FALSE(t.cancelled());
  t.request_cancel();  // no-op, no crash
  t.set_deadline_after(0.001);
  EXPECT_FALSE(t.cancelled());
}

TEST(CancellationTest, RequestCancelFlips) {
  const cancellation_token t = cancellation_token::make();
  EXPECT_TRUE(t.valid());
  EXPECT_FALSE(t.cancelled());
  t.request_cancel();
  EXPECT_TRUE(t.cancelled());
}

TEST(CancellationTest, DeadlineFires) {
  const cancellation_token t = cancellation_token::make();
  t.set_deadline_after(5.0);
  EXPECT_FALSE(t.cancelled());
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_TRUE(t.cancelled());
}

TEST(CancellationTest, ChildSeesParentCancelButNotViceVersa) {
  const cancellation_token parent = cancellation_token::make();
  const cancellation_token child = parent.child();
  EXPECT_FALSE(child.cancelled());
  child.request_cancel();
  EXPECT_TRUE(child.cancelled());
  EXPECT_FALSE(parent.cancelled());  // a child never cancels its parent

  const cancellation_token sibling = parent.child();
  parent.request_cancel();
  EXPECT_TRUE(sibling.cancelled());  // a parent cancels every child
}

}  // namespace
}  // namespace isdc
