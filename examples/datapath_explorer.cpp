// Design-space exploration: sweep the target clock period of an ML-core
// datapath and chart the register/stage Pareto front of SDC vs ISDC —
// the workflow an HLS user runs when choosing a pipeline frequency.
//
// One engine serves the whole sweep: a subgraph's true delay does not
// depend on the clock period, so later periods reuse the downstream
// evaluations of earlier ones through the engine's evaluation cache (the
// hit/miss column shows how much synthesis work the sweep saved).
//
//   $ ./datapath_explorer [workload] [periods...]
#include <iostream>
#include <string>
#include <vector>

#include "engine/engine.h"
#include "sched/metrics.h"
#include "support/table.h"
#include "workloads/registry.h"

int main(int argc, char** argv) {
  using namespace isdc;

  const std::string name = argc > 1 ? argv[1] : "ml_datapath0_opcode0";
  const auto* spec = workloads::find_workload(name);
  if (spec == nullptr) {
    std::cerr << "unknown workload " << name << "; available:\n";
    for (const auto& w : workloads::all_workloads()) {
      std::cerr << "  " << w.name << "\n";
    }
    return 1;
  }
  std::vector<double> periods;
  for (int i = 2; i < argc; ++i) {
    periods.push_back(std::stod(argv[i]));
  }
  if (periods.empty()) {
    periods = {spec->clock_period_ps, spec->clock_period_ps * 1.25,
               spec->clock_period_ps * 1.5, spec->clock_period_ps * 2.0};
  }

  const ir::graph g = spec->build();
  synth::delay_model model;   // shared characterization across the sweep
  engine::engine isdc_engine;  // shared evaluation cache across the sweep

  text_table table;
  table.set_header({"period (ps)", "SDC stages", "SDC regs", "ISDC stages",
                    "ISDC regs", "regs saved", "iters", "evals (cached)"});
  for (double period : periods) {
    core::isdc_options opts;
    opts.base.clock_period_ps = period;
    opts.max_iterations = 10;
    opts.subgraphs_per_iteration = 16;
    core::synthesis_downstream tool(opts.synth);
    const auto stats_before = isdc_engine.cache().stats();
    const core::isdc_result result = isdc_engine.run(g, tool, opts, &model);
    const auto stats_after = isdc_engine.cache().stats();
    const auto sdc_regs = sched::register_bits(g, result.initial);
    const auto isdc_regs =
        sched::register_bits(g, result.final_schedule);
    table.add_row(
        {format_double(period, 0), std::to_string(result.initial.num_stages()),
         std::to_string(sdc_regs),
         std::to_string(result.final_schedule.num_stages()),
         std::to_string(isdc_regs),
         format_double(
             100.0 * (1.0 - static_cast<double>(isdc_regs) /
                                static_cast<double>(sdc_regs)),
             1) +
             "%",
         std::to_string(result.iterations),
         std::to_string(stats_after.misses - stats_before.misses) + " (" +
             std::to_string(stats_after.hits - stats_before.hits) + ")"});
  }
  std::cout << "=== clock-period sweep of " << name << " ("
            << g.num_nodes() << " nodes) ===\n\n";
  table.print(std::cout);
  return 0;
}
