// Standalone netlist export: take a registry workload, schedule it with
// classic SDC, extract its top-ranked critical cone — the exact unit of
// feedback ISDC ships to a downstream tool — and dump it in both export
// formats: the structural Verilog a real Yosys+OpenSTA backend consumes,
// and the compact text form the subprocess worker protocol embeds
// (round-trippable via backend::from_text).
//
// Usage: export_netlist [workload] [--text]
//   workload  registry name (default crc32)
//   --text    emit the text format instead of Verilog
#include <cstring>
#include <iostream>

#include "backend/netlist.h"
#include "core/isdc_scheduler.h"
#include "extract/cone.h"
#include "extract/path_enum.h"
#include "extract/scoring.h"
#include "workloads/registry.h"

int main(int argc, char** argv) {
  using namespace isdc;

  const char* name = "crc32";
  bool text = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--text") == 0) {
      text = true;
    } else {
      name = argv[i];
    }
  }
  const workloads::workload_spec* spec = workloads::find_workload(name);
  if (spec == nullptr) {
    std::cerr << "unknown workload: " << name << "\n";
    return 1;
  }
  const ir::graph g = spec->build();

  // Classic SDC baseline, then the fanout-ranked candidate list — the
  // same enumerate/rank/expand front half the ISDC engine runs.
  core::isdc_options opts;
  opts.base.clock_period_ps = spec->clock_period_ps;
  sched::delay_matrix delays(0);
  const sched::schedule baseline =
      core::run_sdc_baseline(g, opts, nullptr, &delays);
  auto paths = extract::enumerate_candidate_paths(g, baseline, delays);
  const auto ranked = extract::rank_candidates(
      g, baseline, spec->clock_period_ps,
      extract::extraction_strategy::fanout_driven, std::move(paths));
  if (ranked.empty()) {
    std::cerr << "no candidate paths (design fits its clock period)\n";
    return 1;
  }
  const extract::subgraph cone =
      extract::expand_to_cone(g, baseline, ranked.front().path);
  const ir::extraction sub_ir = extract::subgraph_to_ir(g, cone);

  std::cerr << spec->name << ": top cone has " << cone.members.size()
            << " members / " << cone.roots.size() << " roots in stage "
            << cone.stage << "\n";
  if (text) {
    std::cout << backend::to_text(sub_ir.g);
  } else {
    std::cout << backend::to_verilog(sub_ir.g);
  }
  return 0;
}
