// Quickstart: build a small dataflow design, schedule it with classic SDC,
// then run ISDC with the built-in synthesis downstream and compare.
//
//   $ ./quickstart
//
// Walks through the whole public API surface in ~70 lines: ir::builder,
// the staged engine (with an observer streaming each iteration),
// core::run_isdc's one-call equivalent, sched metrics and validation.
#include <iostream>

#include "engine/engine.h"
#include "ir/builder.h"
#include "sched/metrics.h"
#include "sched/validate.h"

int main() {
  using namespace isdc;

  // 1. Describe the datapath: out = (a + b + c) xor rotl(a, 5), 32 bit.
  ir::graph g("quickstart");
  ir::builder b(g);
  const ir::node_id a = b.input(32, "a");
  const ir::node_id bb = b.input(32, "b");
  const ir::node_id c = b.input(32, "c");
  const ir::node_id sum = b.add(b.add(a, bb), c);
  const ir::node_id mixed = b.bxor(sum, b.rotli(a, 5));
  b.output(b.add(mixed, bb));

  // 2. Configure the flow: 2.5 ns clock, up to 8 feedback iterations.
  core::isdc_options opts;
  opts.base.clock_period_ps = 2500.0;
  opts.max_iterations = 8;
  opts.subgraphs_per_iteration = 8;

  // 3. Run on the staged engine. The downstream tool is the built-in
  //    logic-synthesis + STA flow; any timing oracle can be plugged in
  //    instead (see the custom_downstream example). The observer streams
  //    every iteration as it finishes — core::run_isdc(g, tool, opts) is
  //    the one-call version without the streaming.
  core::synthesis_downstream tool(opts.synth);
  engine::engine isdc_engine;
  engine::callback_observer progress([](const core::iteration_record& rec) {
    std::cout << "iteration " << rec.iteration << ": " << rec.register_bits
              << " register bits, " << rec.num_stages << " stages, "
              << rec.subgraphs_evaluated << " subgraphs evaluated\n";
  });
  isdc_engine.add_observer(&progress);

  std::cout << "design: " << g.num_nodes() << " nodes, "
            << g.inputs().size() << " inputs\n\n";
  const core::isdc_result result = isdc_engine.run(g, tool, opts);

  // 4. Inspect.
  std::cout << "\nclassic SDC : " << result.initial.num_stages()
            << " stages, " << sched::register_bits(g, result.initial)
            << " register bits\n";
  std::cout << "ISDC        : " << result.final_schedule.num_stages()
            << " stages, "
            << sched::register_bits(g, result.final_schedule)
            << " register bits (" << result.iterations << " iterations)\n";
  const auto cache_stats = isdc_engine.cache().stats();
  std::cout << "evaluations : " << cache_stats.misses << " downstream, "
            << cache_stats.hits << " from cache\n";

  std::cout << "\npost-synthesis slack: "
            << sched::post_synthesis_slack(g, result.final_schedule,
                                           opts.base.clock_period_ps)
            << " ps\n";

  const auto violations = sched::validate_schedule(
      g, result.final_schedule, result.delays, opts.base.clock_period_ps);
  std::cout << "final schedule legal: "
            << (violations.empty() ? "yes" : "NO") << "\n";
  return violations.empty() ? 0 : 1;
}
