// The "no human in the loop, any downstream tool" claim in practice:
// plug a user-defined timing oracle into ISDC by subclassing
// core::downstream_tool. This example builds a linear-delay model (a
// stand-in for, say, an external STA service or a vendor tool wrapper) and
// compares it against the built-in synthesis flow and the AIG-depth
// shortcut from the paper's Section V-3.
#include <iostream>

#include "core/isdc_scheduler.h"
#include "sched/metrics.h"
#include "support/table.h"
#include "synth/characterizer.h"
#include "workloads/registry.h"

namespace {

/// Example custom oracle: per-op delays from the characterizer, composed
/// with a fixed "synthesis discount" on multi-op subgraphs. A real
/// integration would shell out to a vendor flow here; the interface is one
/// const method, so anything that can time a netlist fits.
class discounted_model_downstream final : public isdc::core::downstream_tool {
public:
  explicit discounted_model_downstream(double discount)
      : discount_(discount) {}

  double subgraph_delay_ps(const isdc::ir::graph& sub) const override {
    // Longest path by per-op delays, then the flat discount.
    std::vector<double> arrival(sub.num_nodes(), 0.0);
    double worst = 0.0;
    for (isdc::ir::node_id v = 0; v < sub.num_nodes(); ++v) {
      double in = 0.0;
      for (isdc::ir::node_id p : sub.at(v).operands) {
        in = std::max(in, arrival[p]);
      }
      arrival[v] = in + model_.node_delay_ps(sub, v);
      worst = std::max(worst, arrival[v]);
    }
    return worst * discount_;
  }
  std::string name() const override { return "discounted-model"; }

private:
  isdc::synth::delay_model model_;
  double discount_;
};

}  // namespace

int main() {
  using namespace isdc;

  const auto* spec = workloads::find_workload("video_core");
  const ir::graph g = spec->build();

  core::isdc_options opts;
  opts.base.clock_period_ps = spec->clock_period_ps;
  opts.max_iterations = 10;
  opts.subgraphs_per_iteration = 16;

  core::synthesis_downstream full_flow(opts.synth);
  core::aig_depth_downstream aig_depth(80.0);  // slope from bench_fig8
  discounted_model_downstream custom(0.8);

  text_table table;
  table.set_header({"downstream tool", "stages", "register bits", "iters"});
  for (core::downstream_tool* tool :
       {static_cast<core::downstream_tool*>(&full_flow),
        static_cast<core::downstream_tool*>(&aig_depth),
        static_cast<core::downstream_tool*>(&custom)}) {
    const core::isdc_result result = core::run_isdc(g, *tool, opts);
    table.add_row({tool->name(),
                   std::to_string(result.final_schedule.num_stages()),
                   std::to_string(
                       sched::register_bits(g, result.final_schedule)),
                   std::to_string(result.iterations)});
  }
  std::cout << "=== " << spec->name
            << ": one scheduling loop, three downstream tools ===\n\n";
  table.print(std::cout);
  std::cout << "\n(baseline SDC: "
            << sched::register_bits(
                   g, core::run_sdc_baseline(g, opts))
            << " register bits)\n";
  return 0;
}
