// Pipeline a real algorithm: the crc32 benchmark (32 unrolled LFSR steps).
// Shows per-stage reporting and Graphviz export of the scheduled pipeline
// (the view of the paper's Fig. 2).
//
//   $ ./crc32_pipeline > crc32_schedule.dot  # dot -Tpng to render
#include <fstream>
#include <iostream>

#include "core/isdc_scheduler.h"
#include "ir/dot.h"
#include "sched/metrics.h"
#include "workloads/registry.h"

int main() {
  using namespace isdc;

  const ir::graph g = workloads::build_crc32(32);

  core::isdc_options opts;
  opts.base.clock_period_ps = 2500.0;
  opts.max_iterations = 10;
  opts.subgraphs_per_iteration = 16;
  core::synthesis_downstream tool(opts.synth);
  const core::isdc_result result = core::run_isdc(g, tool, opts);

  std::cerr << "crc32: " << g.num_nodes() << " IR nodes\n";
  for (const auto* label : {"SDC ", "ISDC"}) {
    const sched::schedule& s = std::string(label) == "SDC "
                                   ? result.initial
                                   : result.final_schedule;
    std::cerr << label << ": " << s.num_stages() << " stages, "
              << sched::register_bits(g, s) << " register bits\n";
    const auto delays = sched::estimated_stage_delays(
        g, s, std::string(label) == "SDC " ? result.naive_delays
                                           : result.delays);
    for (std::size_t stage = 0; stage < delays.size(); ++stage) {
      std::cerr << "  stage " << stage << ": "
                << s.nodes_in_stage(static_cast<int>(stage)).size()
                << " ops, estimated " << delays[stage] << " ps, synthesized "
                << sched::synthesized_stage_delay(
                       g, s, static_cast<int>(stage), opts.synth)
                << " ps\n";
    }
  }

  // Dot of the final pipeline (clustered by stage) on stdout.
  std::vector<int> stages(result.final_schedule.cycle.begin(),
                          result.final_schedule.cycle.end());
  ir::write_dot(std::cout, g, stages);
  std::cerr << "\n(dot graph of the ISDC schedule written to stdout)\n";
  return 0;
}
